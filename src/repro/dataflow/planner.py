"""The dataflow planner: executes the reconstruction graph.

The planner replaces the cascade's *control flow*, not its kernels: every
node executes through the same pipeline methods the legacy path calls
(``anchor_session``, ``score_pair``, ``build_room``, the skeleton and
assembler entry points), so the default mode is byte-identical to the
cascade by construction. What changes is scheduling:

- **Graph-level skipping.** Each node's content key (see
  :mod:`repro.dataflow.graph`) is looked up in a dedicated result-cache
  namespace before the node runs. A warm rerun resolves the whole graph
  from session digests (memoized on the session objects) and cache
  lookups — no interior array is re-hashed, no kernel runs.
- **Stage fusion.** Under the serial backend the per-session
  gray→blur→HOG chain is fused into one global pass over every frame of
  every *missing* key-frame node, packed into full same-shape batches
  across session boundaries (the per-session passes leave ragged batch
  tails; the global pass doesn't). The fused pass fills the same
  per-frame ``hog`` cache slots selection reads, so values are
  bit-identical to the per-session path.
- **Serial pair scoring and lazy SURF.** On the 1-core bench box the
  thread-pool pair map and the eager SURF prefetch both cost more than
  they save; the planner scores pairs in-line and lets comparison pull
  SURF features lazily (both bit-identical — same kernels, same order).
  Parallel backends keep the legacy fan-out + prefetch pipelining.
- **Size-dispatched kernels** live in :mod:`repro.core.keyframes` behind
  the injected blur dispatcher and only activate in ``aggressive`` mode;
  the planner's only involvement is namespacing its node cache per mode
  so near-identical (but not bit-identical) aggressive values never leak
  into a default-mode run.

Execution telemetry (which nodes ran, which were skipped) is exposed via
:func:`last_plan_report` for the invalidation tests and the bench
scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.graph import (
    Node,
    ReconstructionPlan,
    build_plan,
    seal_floorplan_key,
    seal_pathway_key,
)
from repro.dataflow.runtime import get_runtime

#: Result-cache namespace per planner mode. Aggressive-mode node values
#: match default values only to round-off, so the modes never share slots.
_NAMESPACES = {"default": "dataflow", "aggressive": "dataflow_aggressive"}


@dataclass
class PlanReport:
    """Node-execution telemetry for one planner run."""

    mode: str
    executed: Dict[str, List[str]] = field(default_factory=dict)
    skipped: Dict[str, List[str]] = field(default_factory=dict)

    def _ids(self, table: Dict[str, List[str]], kind: Optional[str]) -> List[str]:
        if kind is not None:
            return list(table.get(kind, ()))
        return [nid for ids in table.values() for nid in ids]

    def executed_ids(self, kind: Optional[str] = None) -> List[str]:
        return self._ids(self.executed, kind)

    def skipped_ids(self, kind: Optional[str] = None) -> List[str]:
        return self._ids(self.skipped, kind)

    def n_executed(self, kind: Optional[str] = None) -> int:
        return len(self._ids(self.executed, kind))

    def n_skipped(self, kind: Optional[str] = None) -> int:
        return len(self._ids(self.skipped, kind))


_last_report: Optional[PlanReport] = None


def last_plan_report() -> Optional[PlanReport]:
    """The execution report of the most recent planner run (or None)."""
    return _last_report


def _frames_valid(frames: Sequence[Any]) -> bool:
    """The cheap validity screen selection applies before computing HOGs.

    Mirrors :func:`repro.core.keyframes.select_keyframes` so the fused
    pass never spends kernel time on (or caches values for) frames whose
    session is about to be quarantined anyway.
    """
    import math
    for frame in frames:
        pixels = frame.pixels
        if pixels is None or pixels.size == 0:
            return False
        if not (math.isfinite(float(pixels.min()))
                and math.isfinite(float(pixels.max()))):
            return False
    return True


class DataflowPlanner:
    """Builds and executes the reconstruction dataflow graph."""

    def __init__(self, pipeline: Any, mode: str = "default"):
        if mode not in _NAMESPACES:
            raise ValueError(
                f"planner mode must be one of {tuple(_NAMESPACES)}, got {mode!r}"
            )
        self.pipeline = pipeline
        self.config = pipeline.config
        self.mode = mode
        self.namespace = _NAMESPACES[mode]

    # -- node bookkeeping ---------------------------------------------

    def _lookup(self, cache: Any, node: Node, report: PlanReport) -> Tuple[bool, Any]:
        hit, value = cache.lookup(self.namespace, node.key)
        if hit:
            report.skipped.setdefault(node.kind, []).append(node.node_id)
            get_runtime().telemetry.counter(
                "dataflow_nodes_skipped",
                "dataflow nodes resolved from the graph-level cache",
            ).inc()
        return hit, value

    def _executed(self, cache: Any, node: Node, value: Any, report: PlanReport) -> None:
        cache.store(self.namespace, node.key, value)
        report.executed.setdefault(node.kind, []).append(node.node_id)
        get_runtime().telemetry.counter(
            "dataflow_nodes_executed",
            "dataflow nodes whose kernels actually ran",
        ).inc()

    @property
    def _serial(self) -> bool:
        return self.config.worker_backend == "serial"

    def _fused_hog_pass(
        self,
        sessions: Sequence[Any],
        plan: Any,
        cache: Any,
        report: PlanReport,
    ) -> None:
        """One global gray→blur→HOG pass over every pending session.

        Only under the serial backend (process workers compute HOGs in
        their own address spaces) and only when caching is enabled (the
        pass communicates with selection through the ``hog`` cache
        slots). Sessions that fail the validity screen are left for
        selection to quarantine.

        Each session's shared frame-stack node is accounted here: a
        marker hit means a previous run already pushed this content
        through the shared-plane chain (its per-frame cache slots are
        warm, so the session is dropped from the fused batch); a miss
        executes the pass and stores the marker. Under the aggressive
        profile the key-frame pre-screen thins each session's frames
        first, so the fused chain never runs on frames the selection is
        about to drop anyway.
        """
        from repro.core.keyframes import _frame_hogs, prescreen_survivors
        aggressive = self.mode == "aggressive"
        frames: List[Any] = []
        pending_nodes: List[Node] = []
        for session in sessions:
            if not _frames_valid(session.frames):
                continue
            node = plan.fs_nodes.get(session.session_id)
            if node is not None:
                hit, _ = self._lookup(cache, node, report)
                if hit:
                    continue
                pending_nodes.append(node)
            session_frames = session.frames
            if aggressive:
                session_frames = prescreen_survivors(session_frames, self.config)
            frames.extend(session_frames)
        if frames:
            _frame_hogs(frames, self.config)
        for node in pending_nodes:
            self._executed(cache, node, True, report)

    # -- phases --------------------------------------------------------

    def run_sessions(self, sessions: Sequence[Any]) -> Any:
        """Execute the full graph; returns a ``ReconstructionResult``."""
        from repro.core.pipeline import (
            ReconstructionResult,
            StageFailure,
            _trajectory_bounds,
        )
        from repro.core.aggregation import (
            AnchoredTrajectory,
            calibrate_drift,
            register_candidates,
        )
        from repro.core.keyframes import prefetch_surf
        from repro.core.skeleton import reconstruct_skeleton

        global _last_report
        rt = get_runtime()
        cache = rt.get_cache()
        pipeline = self.pipeline
        config = self.config
        quarantine = config.pipeline_on_error == "quarantine"
        fuse = self._serial and cache.enabled

        plan = build_plan(pipeline, sessions)
        report = PlanReport(mode=self.mode)
        timings: Dict[str, float] = {}
        failures: List[StageFailure] = []

        # ---- phase 1: pathway ----------------------------------------
        t0 = time.perf_counter()
        kf_values: Dict[int, Any] = {}
        kf_miss: List[int] = []
        for idx, node in enumerate(plan.kf_nodes):
            hit, value = self._lookup(cache, node, report)
            if hit:
                kf_values[idx] = value
            else:
                kf_miss.append(idx)

        failed_ids: List[str] = []
        if kf_miss:
            miss_sessions = [plan.sws_sessions[i] for i in kf_miss]
            if fuse:
                self._fused_hog_pass(miss_sessions, plan, cache, report)
            consume = None
            if config.surf_prefetch and not self._serial:
                # Parallel backends keep the legacy stage pipelining:
                # SURF runs on each session's key-frames in the parent
                # while later sessions still stream back. Serially, lazy
                # per-comparison SURF computes strictly fewer frames.
                def consume(index: int, ok: bool, value: Any) -> None:
                    if ok and value is not None:
                        prefetch_surf(value.keyframes, config)
            if quarantine:
                successes, errors = rt.map_with_failures(
                    pipeline.anchor_session, miss_sessions,
                    max_workers=config.n_workers,
                    backend=config.worker_backend,
                    transport=config.worker_transport,
                    consume=consume,
                )
                for pos, anchored_one in successes:
                    idx = kf_miss[pos]
                    kf_values[idx] = anchored_one
                    self._executed(cache, plan.kf_nodes[idx], anchored_one, report)
                for pos, exc in errors:
                    idx = kf_miss[pos]
                    session = plan.sws_sessions[idx]
                    failed_ids.append(session.session_id)
                    failures.append(StageFailure(
                        stage="keyframes",
                        item_id=session.session_id,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    ))
                    pipeline.telemetry.counter(
                        "sessions_quarantined",
                        "SWS sessions quarantined by graceful degradation",
                    ).inc()
            else:
                results = rt.map_parallel(
                    pipeline.anchor_session, miss_sessions,
                    max_workers=config.n_workers,
                    backend=config.worker_backend,
                    transport=config.worker_transport,
                    consume=consume,
                )
                for pos, anchored_one in enumerate(results):
                    idx = kf_miss[pos]
                    kf_values[idx] = anchored_one
                    self._executed(cache, plan.kf_nodes[idx], anchored_one, report)

        # Survivors, in original session order — the same ordering the
        # cascade's order-preserving worker map produces.
        survivors = [i for i in range(len(plan.sws_sessions)) if i in kf_values]
        anchored: List[AnchoredTrajectory] = [kf_values[i] for i in survivors]

        candidates = []
        surviving_pairs: List[Tuple[int, int]] = []
        for p in range(len(survivors)):
            for q in range(p + 1, len(survivors)):
                ij = (survivors[p], survivors[q])
                surviving_pairs.append(ij)
                node = plan.pair_nodes[ij]
                hit, value = self._lookup(cache, node, report)
                if hit:
                    cand = replace(value, index_a=p, index_b=q)
                else:
                    cand = pipeline.aggregator.score_pair(
                        anchored[p], anchored[q], p, q
                    )
                    # Store position-free: a pair's score is a property of
                    # the two sessions, not of where they sit in today's
                    # survivor list.
                    self._executed(
                        cache, node, replace(cand, index_a=0, index_b=1), report
                    )
                candidates.append(cand)

        plan.pathway_node.key = seal_pathway_key(
            plan, surviving_pairs, failed_ids, config
        )
        hit, value = self._lookup(cache, plan.pathway_node, report)
        if hit:
            aggregation, skeleton = value
        else:
            aggregation = register_candidates(anchored, candidates)
            if anchored and config.drift_calibration_iterations > 0:
                trajectories = calibrate_drift(
                    anchored, aggregation,
                    iterations=config.drift_calibration_iterations,
                )
            else:
                trajectories = aggregation.trajectories
            bounds = _trajectory_bounds(aggregation, margin=2.0)
            skeleton = reconstruct_skeleton(trajectories, bounds, config)
            self._executed(
                cache, plan.pathway_node, (aggregation, skeleton), report
            )
        timings["pathway"] = time.perf_counter() - t0

        # ---- phase 2: rooms ------------------------------------------
        t0 = time.perf_counter()
        room_values: Dict[int, Any] = {}
        room_failed: Dict[int, str] = {}
        room_miss: List[int] = []
        for idx, node in enumerate(plan.room_nodes):
            hit, value = self._lookup(cache, node, report)
            if hit:
                room_values[idx] = value
            else:
                room_miss.append(idx)

        if room_miss:
            miss_groups = [plan.srs_groups[i] for i in room_miss]
            if fuse:
                self._fused_hog_pass(
                    [session for group in miss_groups for session in group],
                    plan, cache, report,
                )
            if quarantine:
                successes, errors = rt.map_with_failures(
                    pipeline.build_room, miss_groups,
                    max_workers=config.n_workers,
                    backend=config.worker_backend,
                    transport=config.worker_transport,
                )
                for pos, result in successes:
                    idx = room_miss[pos]
                    room_values[idx] = result
                    self._executed(cache, plan.room_nodes[idx], result, report)
                for pos, exc in errors:
                    idx = room_miss[pos]
                    group_id = "+".join(
                        s.session_id for s in plan.srs_groups[idx]
                    )
                    room_failed[idx] = group_id
                    failures.append(StageFailure(
                        stage="panorama",
                        item_id=group_id,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    ))
                    pipeline.telemetry.counter(
                        "panorama_groups_quarantined",
                        "SRS panorama groups quarantined by graceful degradation",
                    ).inc()
            else:
                results = rt.map_parallel(
                    pipeline.build_room, miss_groups,
                    max_workers=config.n_workers,
                    backend=config.worker_backend,
                    transport=config.worker_transport,
                )
                for pos, result in enumerate(results):
                    idx = room_miss[pos]
                    room_values[idx] = result
                    self._executed(cache, plan.room_nodes[idx], result, report)

        panoramas, layouts = [], []
        room_outcomes: List[str] = []
        for idx, node in enumerate(plan.room_nodes):
            if idx in room_failed:
                room_outcomes.append(f"failed:{room_failed[idx]}")
                continue
            room_outcomes.append(node.key)
            result = room_values.get(idx)
            if result is None:
                continue
            pano, layout = result
            panoramas.append(pano)
            layouts.append(layout)
        timings["rooms"] = time.perf_counter() - t0

        # ---- phase 3: floor plan -------------------------------------
        t0 = time.perf_counter()
        plan.floorplan_node.key = seal_floorplan_key(
            plan, plan.pathway_node.key, room_outcomes, config
        )
        hit, floorplan = self._lookup(cache, plan.floorplan_node, report)
        if not hit:
            floorplan = pipeline.assembler.arrange(
                skeleton, layouts, names=[p.room_hint for p in panoramas]
            )
            self._executed(cache, plan.floorplan_node, floorplan, report)
        timings["floorplan"] = time.perf_counter() - t0

        _last_report = report
        return ReconstructionResult(
            aggregation=aggregation,
            skeleton=skeleton,
            panoramas=panoramas,
            layouts=layouts,
            floorplan=floorplan,
            timings=timings,
            anchored=anchored,
            failures=failures,
        )
