"""Injected backend handles for the dataflow planner (layer inversion).

``repro.dataflow`` sits between ``vision`` and ``world``/``baselines`` in
the CM010 layer DAG — *below* ``backend`` — so it must not import the
cache, telemetry or worker modules upward. The unlayered package root
(``repro/__init__``) sees both sides; it constructs a
:class:`PlannerRuntime` from the backend's public handles and installs it
here at import time. This is the same dependency inversion
``baselines.single_image`` uses for its injectable mapper: the planner
declares *what* it needs (content digests, a result cache, a worker map,
telemetry) and the assembler above both layers supplies *how*.

Every handle is the exact backend function the legacy cascade uses, so
planner cache keys are interchangeable with the cascade's: a ``hog`` or
``surf`` entry written by one is a hit for the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class PlannerRuntime:
    """The backend surface the planner runs against.

    ``get_cache``/``frame_digest``/``array_digest``/``config_fingerprint``
    /``value_fingerprint`` come from ``repro.backend.cache``;
    ``plan_batches`` from ``repro.backend.batching``; ``map_parallel`` /
    ``map_with_failures`` from ``repro.backend.workers``; ``telemetry``
    is the default registry.
    """

    get_cache: Callable[[], Any]
    frame_digest: Callable[[Any], str]
    array_digest: Callable[[Any], str]
    config_fingerprint: Callable[..., str]
    value_fingerprint: Callable[..., str]
    plan_batches: Callable[..., Any]
    map_parallel: Callable[..., Any]
    map_with_failures: Callable[..., Any]
    telemetry: Any


_runtime: Optional[PlannerRuntime] = None


def install_runtime(runtime: PlannerRuntime) -> None:
    """Install the backend surface (called by ``repro/__init__``)."""
    global _runtime
    _runtime = runtime


def get_runtime() -> PlannerRuntime:
    """The installed runtime; raises when the package root never wired one."""
    if _runtime is None:
        raise RuntimeError(
            "repro.dataflow runtime not installed — import the 'repro' "
            "package root (it wires the backend handles in) instead of "
            "importing repro.dataflow modules standalone"
        )
    return _runtime
