"""Dataflow planner: graph-level caching, fusion, size-dispatched kernels.

Layered between ``vision`` and ``world``/``baselines`` in the CM010 DAG:
this package may import the vision kernels and ``core`` (both below it)
but not the backend (above it) — the backend surface arrives by
injection (:mod:`repro.dataflow.runtime`), wired by ``repro/__init__``.

Public surface:

- :class:`DataflowPlanner` / :func:`last_plan_report` — the executor and
  its node-execution telemetry.
- :func:`build_plan` and the key machinery in :mod:`repro.dataflow.graph`.
- The FFT-vs-direct size dispatcher in :mod:`repro.dataflow.dispatch`.
- ``python -m repro.dataflow`` — the planner-vs-cascade byte-identity
  verifier CI runs on the smoke profile.
"""

from __future__ import annotations

from repro.dataflow.graph import ReconstructionPlan, build_plan
from repro.dataflow.planner import DataflowPlanner, PlanReport, last_plan_report
from repro.dataflow.runtime import PlannerRuntime, get_runtime, install_runtime
from repro.dataflow import dispatch


class BlurDispatcher:
    """The size-dispatch hook ``repro.core.keyframes`` consults.

    ``variant`` names the implementation the cost model picks for a
    given image shape (``""`` direct, ``":fft"`` FFT) — used as a cache
    key suffix; ``blur`` runs the FFT path.
    """

    @staticmethod
    def variant(shape, sigma: float) -> str:
        choice = dispatch.choose_separable(sigma, tuple(shape[-2:]))
        return ":fft" if choice == "fft" else ""

    @staticmethod
    def blur(stack, sigma: float):
        return dispatch.gaussian_blur_stack_fft(stack, sigma)


__all__ = [
    "BlurDispatcher",
    "DataflowPlanner",
    "PlanReport",
    "PlannerRuntime",
    "ReconstructionPlan",
    "build_plan",
    "dispatch",
    "get_runtime",
    "install_runtime",
    "last_plan_report",
]
