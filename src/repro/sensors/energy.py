"""Energy accounting for the mobile front-end (paper Section VI).

"The inertial sensor (accelerometer, compass and gyroscope) only consumes
about 30mW when sampling. Recording video takes an average of 350mW for a
one minute recording with a resolution setting of 480p." Unlike
CrowdInside, CrowdMap runs no background daemon, so a user's cost is just
the sum over their explicit capture sessions. This module prices sessions
and whole campaigns with those figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable

if TYPE_CHECKING:  # sensors must not import world at runtime (layering)
    from repro.world.walker import CaptureSession

#: Power draw of the sampled inertial stack, watts (paper: ~30 mW).
IMU_POWER_W = 0.030

#: Power draw of 480p video recording, watts (paper: ~350 mW).
VIDEO_POWER_W = 0.350

#: A typical smartphone battery, watt-hours (11.1 Wh ~ 3000 mAh @ 3.7 V).
BATTERY_WH = 11.1


@dataclass(frozen=True)
class EnergyReport:
    """Energy cost of one or more capture sessions."""

    duration_s: float
    imu_joules: float
    video_joules: float

    @property
    def total_joules(self) -> float:
        return self.imu_joules + self.video_joules

    @property
    def total_wh(self) -> float:
        return self.total_joules / 3600.0

    @property
    def battery_fraction(self) -> float:
        """Fraction of a typical battery consumed."""
        return self.total_wh / BATTERY_WH

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            duration_s=self.duration_s + other.duration_s,
            imu_joules=self.imu_joules + other.imu_joules,
            video_joules=self.video_joules + other.video_joules,
        )


def session_energy(session: "CaptureSession") -> EnergyReport:
    """Energy cost of one capture session.

    The IMU samples for the session's whole duration; the camera records
    only while frames were being captured (zero for IMU-only sessions such
    as stair transitions).
    """
    duration = session.duration()
    video_s = duration if session.frames else 0.0
    return EnergyReport(
        duration_s=duration,
        imu_joules=IMU_POWER_W * duration,
        video_joules=VIDEO_POWER_W * video_s,
    )


def campaign_energy(sessions: Iterable["CaptureSession"]) -> EnergyReport:
    """Total energy across a campaign's sessions."""
    total = EnergyReport(0.0, 0.0, 0.0)
    for session in sessions:
        total = total + session_energy(session)
    return total


def per_user_battery_cost(sessions: Iterable["CaptureSession"]) -> Dict[str, float]:
    """Battery fraction spent per contributing user.

    The paper's claim to check: "several rounds of data collecting tasks
    should not constitute significant power consumption for an user" —
    i.e. these fractions stay well below a percent.
    """
    by_user: Dict[str, EnergyReport] = {}
    for session in sessions:
        report = session_energy(session)
        if session.user_id in by_user:
            by_user[session.user_id] = by_user[session.user_id] + report
        else:
            by_user[session.user_id] = report
    return {
        user: report.battery_fraction for user, report in by_user.items()
    }
