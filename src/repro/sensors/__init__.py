"""Inertial sensing substrate for CrowdMap.

Simulates the smartphone IMU (gyroscope, accelerometer, compass) and
implements the client-side processing the paper relies on: step counting by
accelerometer peak detection, heading estimation by gyro integration fused
with compass corrections, and dead reckoning that turns both into the
``(x_i, y_i, t_i)`` trajectory triples of the SWS micro-task.
"""

from repro.sensors.imu import ImuConfig, ImuSample, ImuSimulator, ImuTrace
from repro.sensors.step_counter import count_steps, detect_step_times
from repro.sensors.heading import HeadingEstimator, integrate_gyro
from repro.sensors.dead_reckoning import dead_reckon, DeadReckoningConfig
from repro.sensors.trajectory import Trajectory, TrajectoryPoint
from repro.sensors.activity import (
    FloorTransition,
    TransitionKind,
    detect_floor_transitions,
    estimate_altitude,
    floor_of_session,
)

__all__ = [
    "ImuConfig",
    "ImuSample",
    "ImuSimulator",
    "ImuTrace",
    "count_steps",
    "detect_step_times",
    "HeadingEstimator",
    "integrate_gyro",
    "dead_reckon",
    "DeadReckoningConfig",
    "Trajectory",
    "TrajectoryPoint",
    "FloorTransition",
    "TransitionKind",
    "detect_floor_transitions",
    "estimate_altitude",
    "floor_of_session",
]
