"""Activity and floor-transition detection from inertial + barometric data.

Paper Section VI ("Reconstruct Multi-Floors in Single Round"): multi-floor
buildings decompose into per-floor reconstructions connected at stairs and
elevators, with floors told apart by fingerprints (Skyloc) or by "the
acceleration patterns to tell apart corridors and stairs or elevators".
This module provides both signals:

- :func:`estimate_altitude` converts the barometer channel to metres;
- :func:`detect_floor_transitions` finds sustained altitude ramps and
  labels them stairs (step impacts present) or elevator (smooth);
- :func:`floor_of_session` assigns a session to a floor index from its
  median altitude.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sensors.imu import (
    PRESSURE_PER_METRE,
    SEA_LEVEL_PRESSURE,
    ImuTrace,
)
from repro.sensors.step_counter import detect_step_times

#: Standard storey height used to map altitude to a floor index, metres.
FLOOR_HEIGHT = 3.0


class TransitionKind(enum.Enum):
    """How a vertical transition was performed (steps present or not)."""

    STAIRS = "stairs"
    ELEVATOR = "elevator"


@dataclass(frozen=True)
class FloorTransition:
    """One detected vertical movement episode."""

    t_start: float
    t_end: float
    delta_floors: int
    kind: TransitionKind

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def estimate_altitude(trace: ImuTrace, smooth_window_s: float = 2.0) -> np.ndarray:
    """Altitude (m, relative to sea level 0) from the barometer channel.

    Pressure is smoothed with a moving average wide enough to suppress the
    barometer's white noise (a few Pa ~ a quarter metre) before conversion.
    """
    if len(trace) == 0:
        return np.empty(0)
    times = trace.times()
    pressure = trace.pressure()
    if len(times) > 1:
        dt = float(np.median(np.diff(times)))
        window = max(1, int(round(smooth_window_s / dt)))
        kernel = np.ones(window) / window
        padded = np.pad(pressure, window // 2, mode="edge")
        smoothed = np.convolve(padded, kernel, mode="same")
        start = window // 2
        pressure = smoothed[start : start + len(times)]
    return (SEA_LEVEL_PRESSURE - pressure) / PRESSURE_PER_METRE


def detect_floor_transitions(
    trace: ImuTrace,
    min_delta_m: float = 2.0,
    window_s: float = 6.0,
) -> List[FloorTransition]:
    """Detect sustained altitude changes of at least ``min_delta_m``.

    A sliding derivative over ``window_s`` marks climbing episodes; each
    contiguous episode becomes one transition whose floor delta is the
    altitude change rounded to whole storeys. Episodes with detected steps
    are stairs; without, elevators.
    """
    if len(trace) < 10:
        return []
    times = trace.times()
    altitude = estimate_altitude(trace)
    dt = float(np.median(np.diff(times)))
    half = max(1, int(round(window_s / 2.0 / dt)))
    rate = np.zeros_like(altitude)
    for i in range(len(altitude)):
        lo = max(0, i - half)
        hi = min(len(altitude) - 1, i + half)
        span = times[hi] - times[lo]
        if span > 0:
            rate[i] = (altitude[hi] - altitude[lo]) / span
    # Climbing when the sustained vertical rate exceeds ~0.15 m/s.
    moving = np.abs(rate) > 0.15

    transitions: List[FloorTransition] = []
    step_times = np.array(detect_step_times(trace))
    i = 0
    n = len(moving)
    while i < n:
        if not moving[i]:
            i += 1
            continue
        j = i
        while j < n and moving[j]:
            j += 1
        t0, t1 = float(times[i]), float(times[min(j, n - 1)])
        delta = float(altitude[min(j, n - 1)] - altitude[i])
        if abs(delta) >= min_delta_m:
            delta_floors = int(np.round(delta / FLOOR_HEIGHT))
            if delta_floors != 0:
                has_steps = bool(
                    ((step_times >= t0) & (step_times <= t1)).sum() >= 3
                ) if step_times.size else False
                transitions.append(
                    FloorTransition(
                        t_start=t0,
                        t_end=t1,
                        delta_floors=delta_floors,
                        kind=(TransitionKind.STAIRS if has_steps
                              else TransitionKind.ELEVATOR),
                    )
                )
        i = j
    return transitions


def floor_of_session(
    trace: ImuTrace, ground_floor_altitude: float = 0.0
) -> int:
    """Floor index (0-based) of a single-floor session from its altitude."""
    altitude = estimate_altitude(trace)
    if altitude.size == 0:
        return 0
    median = float(np.median(altitude)) - ground_floor_altitude
    return int(np.round(median / FLOOR_HEIGHT))
