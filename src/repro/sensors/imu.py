"""Smartphone IMU simulation: gyroscope, accelerometer, compass.

The paper's substrate is the phone's inertial stack sampled during SRS/SWS
micro-tasks. Offline we synthesize those signals from a ground-truth motion
description with the error sources that make dead reckoning drift in
practice:

- gyroscope: white noise + a slowly varying bias (drift grows with time);
- accelerometer: gravity + per-step impact bumps + white noise, so step
  counting sees a realistic periodic signal;
- compass: the true heading corrupted by white noise and location-dependent
  soft-iron disturbance (a smooth pseudo-random field), modelling indoor
  magnetic interference near steel structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

GRAVITY = 9.81


@dataclass(frozen=True)
class ImuConfig:
    """Noise/bias parameters of a simulated phone IMU."""

    sample_rate_hz: float = 50.0
    gyro_noise_std: float = 0.01  # rad/s white noise
    gyro_bias_std: float = 0.002  # rad/s constant bias magnitude
    gyro_bias_walk_std: float = 0.0002  # rad/s random-walk increment
    accel_noise_std: float = 0.25  # m/s^2 white noise
    step_impact_amplitude: float = 2.4  # m/s^2 peak of a step bump
    compass_noise_std: float = 0.08  # rad white noise
    magnetic_disturbance_std: float = 0.08  # rad amplitude of the field
    magnetic_disturbance_scale: float = 6.0  # metres, spatial period
    pressure_noise_std: float = 3.0  # Pa white noise (phone barometer)
    pressure_drift_std: float = 0.05  # Pa random-walk increment


#: Standard sea-level pressure, Pa.
SEA_LEVEL_PRESSURE = 101325.0

#: Pressure falls ~12 Pa per metre of altitude near the ground.
PRESSURE_PER_METRE = 12.0


@dataclass(frozen=True)
class ImuSample:
    """One timestamped IMU reading."""

    t: float
    gyro_z: float  # yaw rate, rad/s
    accel_magnitude: float  # |a|, m/s^2, gravity included
    compass_heading: float  # rad, CCW from +x
    pressure: float = SEA_LEVEL_PRESSURE  # Pa (barometer)


@dataclass
class ImuTrace:
    """A full recording of IMU samples for one micro-task."""

    samples: List[ImuSample]
    config: ImuConfig = field(default_factory=ImuConfig)

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> np.ndarray:
        return np.array([s.t for s in self.samples])

    def gyro(self) -> np.ndarray:
        return np.array([s.gyro_z for s in self.samples])

    def accel(self) -> np.ndarray:
        return np.array([s.accel_magnitude for s in self.samples])

    def compass(self) -> np.ndarray:
        return np.array([s.compass_heading for s in self.samples])

    def pressure(self) -> np.ndarray:
        return np.array([s.pressure for s in self.samples])

    def duration(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].t - self.samples[0].t


class ImuSimulator:
    """Generates IMU traces from ground-truth motion.

    The simulator owns the per-device bias state so that successive tasks
    recorded by the same user share a bias realization (as a real phone
    would), while different users get independent ones.
    """

    def __init__(self, config: Optional[ImuConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        self.config = config or ImuConfig()
        # Seeded fallback (CM001): an unseeded simulator would give every
        # run a different bias realization and break reproducibility.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._gyro_bias = float(self._rng.normal(0.0, self.config.gyro_bias_std))
        # Random phases for the spatial magnetic disturbance field.
        self._mag_phase = self._rng.uniform(0.0, 2 * math.pi, size=4)

    def _magnetic_disturbance(self, x: float, y: float) -> float:
        """Smooth location-dependent compass error (soft-iron model)."""
        c = self.config
        k = 2 * math.pi / c.magnetic_disturbance_scale
        value = (
            math.sin(k * x + self._mag_phase[0])
            + math.cos(k * y + self._mag_phase[1])
            + math.sin(k * (x + y) / 1.7 + self._mag_phase[2])
        ) / 3.0
        return c.magnetic_disturbance_std * value

    def record(
        self,
        times: Sequence[float],
        positions: np.ndarray,
        headings: Sequence[float],
        step_times: Sequence[float] = (),
        altitudes: Optional[Sequence[float]] = None,
    ) -> ImuTrace:
        """Simulate a recording along a ground-truth motion.

        ``times`` are ground-truth sample instants (the simulator resamples
        to its own rate), ``positions`` the (N, 2) true positions, and
        ``headings`` the true yaw at each instant. ``step_times`` are the
        ground-truth footfall instants used to inject accelerometer bumps.
        ``altitudes`` (m, optional; default 0) drive the barometer channel
        used for floor disambiguation (paper Section VI / Skyloc).
        """
        times = np.asarray(times, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        headings_unwrapped = np.unwrap(np.asarray(headings, dtype=np.float64))
        if len(times) != len(positions) or len(times) != len(headings_unwrapped):
            raise ValueError("times, positions and headings must align")
        if len(times) < 2:
            raise ValueError("need at least two ground-truth samples")

        c = self.config
        dt = 1.0 / c.sample_rate_hz
        sample_times = np.arange(times[0], times[-1] + 1e-9, dt)
        true_heading = np.interp(sample_times, times, headings_unwrapped)
        true_x = np.interp(sample_times, times, positions[:, 0])
        true_y = np.interp(sample_times, times, positions[:, 1])
        true_rate = np.gradient(true_heading, sample_times)

        n = len(sample_times)
        bias_walk = np.cumsum(self._rng.normal(0.0, c.gyro_bias_walk_std, n))
        gyro = (
            true_rate
            + self._gyro_bias
            + bias_walk
            + self._rng.normal(0.0, c.gyro_noise_std, n)
        )

        accel = np.full(n, GRAVITY) + self._rng.normal(0.0, c.accel_noise_std, n)
        for st in step_times:
            # A half-sine impact bump ~0.25 s wide centred on the footfall.
            window = np.abs(sample_times - st) < 0.125
            phase = (sample_times[window] - st + 0.125) / 0.25 * math.pi
            accel[window] += c.step_impact_amplitude * np.sin(phase)

        disturbance = np.array(
            [self._magnetic_disturbance(x, y) for x, y in zip(true_x, true_y)]
        )
        compass = (
            true_heading
            + disturbance
            + self._rng.normal(0.0, c.compass_noise_std, n)
        )

        if altitudes is not None:
            alt = np.interp(
                sample_times, times, np.asarray(altitudes, dtype=np.float64)
            )
        else:
            alt = np.zeros(n)
        pressure = (
            SEA_LEVEL_PRESSURE
            - PRESSURE_PER_METRE * alt
            + np.cumsum(self._rng.normal(0.0, c.pressure_drift_std, n))
            + self._rng.normal(0.0, c.pressure_noise_std, n)
        )

        samples = [
            ImuSample(
                t=float(sample_times[i]),
                gyro_z=float(gyro[i]),
                accel_magnitude=float(accel[i]),
                compass_heading=float(compass[i]),
                pressure=float(pressure[i]),
            )
            for i in range(n)
        ]
        return ImuTrace(samples=samples, config=c)
