"""Heading estimation: gyro integration fused with compass corrections.

Paper Section III.A: "the direction change of each step Δω is calculated by
jointly using compass, gyroscope and accelerometer [12]." Gyro integration
is locally accurate but drifts with bias; the compass is absolutely
referenced but noisy and disturbed indoors. The standard fusion — and ours —
is a complementary filter: integrate the gyro at full rate and softly pull
the estimate toward the compass with a small gain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sensors.imu import ImuTrace


def integrate_gyro(trace: ImuTrace, initial_heading: float = 0.0) -> np.ndarray:
    """Heading track from pure gyroscope integration (drifts with bias)."""
    times = trace.times()
    gyro = trace.gyro()
    headings = np.empty(len(times))
    headings[0] = initial_heading
    if len(times) > 1:
        dt = np.diff(times)
        headings[1:] = initial_heading + np.cumsum(gyro[:-1] * dt)
    return headings


class HeadingEstimator:
    """Complementary filter fusing gyro rate with compass absolute heading.

    ``compass_gain`` is the fraction of the (unwrapped) gyro-vs-compass
    disagreement corrected per sample; small values trust the gyro short
    term while still bounding long-term drift.
    """

    def __init__(self, compass_gain: float = 0.02):
        if not 0.0 <= compass_gain <= 1.0:
            raise ValueError("compass_gain must be within [0, 1]")
        self.compass_gain = compass_gain

    def estimate(
        self, trace: ImuTrace, initial_heading: Optional[float] = None
    ) -> np.ndarray:
        """Fused heading at every sample of ``trace`` (radians, unwrapped)."""
        if len(trace) == 0:
            return np.empty(0)
        times = trace.times()
        gyro = trace.gyro()
        compass = np.unwrap(trace.compass())
        heading = np.empty(len(times))
        heading[0] = compass[0] if initial_heading is None else initial_heading
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            predicted = heading[i - 1] + gyro[i - 1] * dt
            # Pull toward the compass by the filter gain.
            error = compass[i] - predicted
            heading[i] = predicted + self.compass_gain * error
        return heading

    def heading_at(self, trace: ImuTrace, t: float) -> float:
        """Fused heading interpolated at time ``t``."""
        headings = self.estimate(trace)
        return float(np.interp(t, trace.times(), headings))
