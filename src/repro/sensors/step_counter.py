"""Accelerometer step counting by peak detection.

Paper Section III.A: "The walking distance |AB| is calculated by the step
counting method, which is widely applied in existing works [2], [6]." The
standard method — used by UnLoc and Walkie-Markie — low-pass filters the
accelerometer magnitude and counts peaks above a threshold with a refractory
period matching the human gait cadence. That is what we implement here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sensors.imu import GRAVITY, ImuTrace


def _moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return signal.copy()
    kernel = np.ones(window) / window
    padded = np.pad(signal, window // 2, mode="edge")
    smoothed = np.convolve(padded, kernel, mode="same")
    start = window // 2
    return smoothed[start : start + len(signal)]


def detect_step_times(
    trace: ImuTrace,
    threshold: float = 0.8,
    min_step_interval: float = 0.3,
    smooth_window_s: float = 0.1,
) -> List[float]:
    """Footfall timestamps detected from an IMU trace.

    The accelerometer magnitude is de-gravitated, smoothed with a
    ``smooth_window_s`` moving average, and local maxima exceeding
    ``threshold`` m/s^2 are kept subject to a ``min_step_interval``
    refractory period (fastest plausible cadence ~3.3 steps/s).
    """
    if len(trace) < 3:
        return []
    times = trace.times()
    accel = trace.accel() - GRAVITY
    dt = float(np.median(np.diff(times))) if len(times) > 1 else 0.02
    window = max(1, int(round(smooth_window_s / dt)))
    smooth = _moving_average(accel, window)

    steps: List[float] = []
    last_step_t = -np.inf
    for i in range(1, len(smooth) - 1):
        if smooth[i] < threshold:
            continue
        if not (smooth[i] >= smooth[i - 1] and smooth[i] > smooth[i + 1]):
            continue
        if times[i] - last_step_t < min_step_interval:
            continue
        steps.append(float(times[i]))
        last_step_t = times[i]
    return steps


def count_steps(trace: ImuTrace, **kwargs) -> int:
    """Number of steps detected in ``trace`` (see :func:`detect_step_times`)."""
    return len(detect_step_times(trace, **kwargs))


def estimate_walking_distance(
    trace: ImuTrace, step_length: float = 0.7, **kwargs
) -> float:
    """Walking distance |AB| as steps x assumed stride length (paper's method).

    Real systems calibrate ``step_length`` per user; the default 0.7 m is
    the adult average the literature uses when uncalibrated.
    """
    return count_steps(trace, **kwargs) * step_length
