"""User trajectories: the ``(x_i, y_i, t_i)`` triples of the SWS task.

Paper Section III.A: "This movement can be described using a triple
(x_i, y_i, t_i) ... a sequence of such triples ... is called the trajectory
of the user." A :class:`Trajectory` is that sequence plus the key-frame
anchors CrowdMap attaches along it for aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of a user trajectory in the user's local frame."""

    x: float
    y: float
    t: float
    heading: float = 0.0

    def distance_to(self, other: "TrajectoryPoint") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass
class Trajectory:
    """A user trajectory with optional key-frame anchors.

    ``keyframe_indices`` maps a key-frame id to the index of the trajectory
    point nearest its capture time; the aggregation module uses these as
    anchor points when merging trajectories from different users.
    """

    points: List[TrajectoryPoint]
    user_id: str = ""
    trajectory_id: str = ""
    keyframe_indices: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    def duration(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].t - self.points[0].t

    def length(self) -> float:
        """Total path length in metres."""
        return sum(
            self.points[i].distance_to(self.points[i + 1])
            for i in range(len(self.points) - 1)
        )

    def as_array(self) -> np.ndarray:
        """(N, 2) array of xy coordinates."""
        return np.array([[p.x, p.y] for p in self.points], dtype=np.float64)

    def times(self) -> np.ndarray:
        return np.array([p.t for p in self.points], dtype=np.float64)

    def translated(self, dx: float, dy: float) -> "Trajectory":
        return Trajectory(
            points=[
                TrajectoryPoint(p.x + dx, p.y + dy, p.t, p.heading)
                for p in self.points
            ],
            user_id=self.user_id,
            trajectory_id=self.trajectory_id,
            keyframe_indices=dict(self.keyframe_indices),
        )

    def rotated(self, theta: float) -> "Trajectory":
        """Rotate about the origin by ``theta`` radians (CCW)."""
        c, s = math.cos(theta), math.sin(theta)
        return Trajectory(
            points=[
                TrajectoryPoint(
                    c * p.x - s * p.y, s * p.x + c * p.y, p.t, p.heading + theta
                )
                for p in self.points
            ],
            user_id=self.user_id,
            trajectory_id=self.trajectory_id,
            keyframe_indices=dict(self.keyframe_indices),
        )

    def transformed(self, theta: float, dx: float, dy: float) -> "Trajectory":
        """Rigid transform: rotate by ``theta`` then translate."""
        return self.rotated(theta).translated(dx, dy)

    def resampled(self, interval: float) -> "Trajectory":
        """Uniform-in-time linear resampling with period ``interval``.

        Key-frame anchors are re-attached to the nearest resampled point by
        capture time.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if len(self.points) < 2:
            return Trajectory(
                points=list(self.points),
                user_id=self.user_id,
                trajectory_id=self.trajectory_id,
                keyframe_indices=dict(self.keyframe_indices),
            )
        times = self.times()
        xs = np.array([p.x for p in self.points])
        ys = np.array([p.y for p in self.points])
        headings = np.unwrap(np.array([p.heading for p in self.points]))
        new_times = np.arange(times[0], times[-1] + 1e-9, interval)
        new_x = np.interp(new_times, times, xs)
        new_y = np.interp(new_times, times, ys)
        new_h = np.interp(new_times, times, headings)
        new_points = [
            TrajectoryPoint(float(x), float(y), float(t), float(h))
            for x, y, t, h in zip(new_x, new_y, new_times, new_h)
        ]
        new_anchors: Dict[str, int] = {}
        for kf_id, idx in self.keyframe_indices.items():
            t_kf = self.points[idx].t
            new_anchors[kf_id] = int(np.argmin(np.abs(new_times - t_kf)))
        return Trajectory(
            points=new_points,
            user_id=self.user_id,
            trajectory_id=self.trajectory_id,
            keyframe_indices=new_anchors,
        )

    def nearest_index(self, t: float) -> int:
        """Index of the trajectory point closest in time to ``t``."""
        if not self.points:
            raise ValueError("empty trajectory")
        times = self.times()
        return int(np.argmin(np.abs(times - t)))

    def attach_keyframe(self, keyframe_id: str, t: float) -> None:
        """Anchor a key-frame (by id) to the point nearest its capture time."""
        self.keyframe_indices[keyframe_id] = self.nearest_index(t)

    @staticmethod
    def from_arrays(
        xy: np.ndarray,
        times: Optional[Sequence[float]] = None,
        user_id: str = "",
        trajectory_id: str = "",
    ) -> "Trajectory":
        """Build a trajectory from an (N, 2) array (unit-time steps by default)."""
        n = len(xy)
        ts = list(times) if times is not None else list(range(n))
        if len(ts) != n:
            raise ValueError("times must match the number of points")
        points = []
        for i in range(n):
            if i + 1 < n:
                dx, dy = xy[i + 1][0] - xy[i][0], xy[i + 1][1] - xy[i][1]
                heading = math.atan2(dy, dx) if (dx or dy) else 0.0
            elif points:
                heading = points[-1].heading
            else:
                heading = 0.0
            points.append(
                TrajectoryPoint(float(xy[i][0]), float(xy[i][1]), float(ts[i]), heading)
            )
        return Trajectory(points=points, user_id=user_id, trajectory_id=trajectory_id)
