"""Pedestrian dead reckoning: steps + headings -> local trajectory.

This produces the trajectory of the SWS micro-task: each detected step
advances the position by the stride length along the fused heading at the
footfall instant, yielding the ``(x_i, y_i, t_i)`` triples (paper Section
III.A). Stride-length error and heading drift accumulate exactly as they do
on a real phone — which is why the pipeline later anchors these trajectories
with video key-frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.sensors.heading import HeadingEstimator
from repro.sensors.imu import ImuTrace
from repro.sensors.step_counter import detect_step_times
from repro.sensors.trajectory import Trajectory, TrajectoryPoint


@dataclass(frozen=True)
class DeadReckoningConfig:
    """Parameters for trajectory reconstruction from an IMU trace."""

    step_length: float = 0.7  # metres per step (uncalibrated adult average)
    compass_gain: float = 0.02
    step_threshold: float = 0.8  # m/s^2, see step_counter
    min_step_interval: float = 0.3  # s


def dead_reckon(
    trace: ImuTrace,
    config: DeadReckoningConfig | None = None,
    origin: tuple = (0.0, 0.0),
    initial_heading: float | None = None,
    user_id: str = "",
    trajectory_id: str = "",
) -> Trajectory:
    """Reconstruct a local-frame trajectory from an IMU trace.

    The trajectory starts at ``origin`` at the trace's first timestamp and
    adds one point per detected step. A final point is appended at the trace
    end so stationary tails (the second "Stay" of Stay-Walk-Stay) are
    represented.
    """
    config = config or DeadReckoningConfig()
    estimator = HeadingEstimator(compass_gain=config.compass_gain)
    if len(trace) == 0:
        return Trajectory(points=[], user_id=user_id, trajectory_id=trajectory_id)
    headings = estimator.estimate(trace, initial_heading=initial_heading)
    times = trace.times()
    step_times = detect_step_times(
        trace,
        threshold=config.step_threshold,
        min_step_interval=config.min_step_interval,
    )

    x, y = float(origin[0]), float(origin[1])
    t0 = float(times[0])
    h0 = float(headings[0])
    points = [TrajectoryPoint(x, y, t0, h0)]
    for st in step_times:
        heading = float(np.interp(st, times, headings))
        x += config.step_length * math.cos(heading)
        y += config.step_length * math.sin(heading)
        points.append(TrajectoryPoint(x, y, float(st), heading))
    t_end = float(times[-1])
    if not step_times or t_end > step_times[-1] + 1e-9:
        points.append(TrajectoryPoint(x, y, t_end, float(headings[-1])))
    return Trajectory(points=points, user_id=user_id, trajectory_id=trajectory_id)
