"""Hallway shape evaluation (paper Section V.A, Table I).

The reconstructed path skeleton is "overlaid onto the ground truth to
achieve maximum cover area by moving and rotating" before measuring:

    P = |S_gen ∩ S_true| / |S_gen|          (Eq. 3)
    R = |S_gen ∩ S_true| / |S_true|         (Eq. 4)
    F = 2 P R / (P + R)                     (Eq. 5)

The paper also manually removes the parts of the skeleton inside rooms
before scoring; we reproduce that by masking reconstructed cells that fall
within ground-truth room rectangles (grown by a small margin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.skeleton import SkeletonResult
from repro.geometry.alignment import AlignmentResult, align_masks
from repro.geometry.polygon_ops import rasterize_polygons
from repro.world.floorplan_model import FloorPlan


@dataclass(frozen=True)
class HallwayShapeScore:
    """Table I row: hallway-shape precision, recall and F-measure."""

    building: str
    precision: float
    recall: float
    f_measure: float
    alignment: AlignmentResult

    def as_row(self) -> tuple:
        return (
            self.building,
            f"{self.precision:.1%}",
            f"{self.recall:.1%}",
            f"{self.f_measure:.1%}",
        )


def _room_mask(plan: FloorPlan, skeleton: SkeletonResult, margin: float) -> np.ndarray:
    """Cells of the skeleton grid covered by ground-truth rooms."""
    polys = [room.polygon().scaled(1.0 + margin) for room in plan.rooms]
    if not polys:
        rows, cols = skeleton.skeleton.shape
        return np.zeros((rows, cols), dtype=bool)
    return rasterize_polygons(polys, skeleton.bounds, skeleton.cell_size)


def evaluate_hallway_shape(
    skeleton: SkeletonResult,
    plan: FloorPlan,
    cut_room_cells: bool = True,
    room_margin: float = 0.05,
) -> HallwayShapeScore:
    """Score a reconstructed skeleton against a ground-truth floor plan.

    Rasterizes the true hallway onto the skeleton's grid, removes skeleton
    cells that belong to room interiors (the paper's manual cut), aligns
    by rotation + translation search, and reports Eq. 3-5.
    """
    truth = rasterize_polygons(
        plan.hallway_polygons(), skeleton.bounds, skeleton.cell_size
    )
    generated = skeleton.skeleton.copy()
    if cut_room_cells:
        generated &= ~_room_mask(plan, skeleton, room_margin)
    alignment = align_masks(generated, truth)
    return HallwayShapeScore(
        building=plan.name,
        precision=alignment.precision,
        recall=alignment.recall,
        f_measure=alignment.f_measure,
        alignment=alignment,
    )
