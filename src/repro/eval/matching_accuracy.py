"""Trajectory matching accuracy (paper Fig. 7a).

Ground truth for "should these two trajectories have been merged?" comes
from the sessions' hidden true motions: two walks share a path when their
ground-truth point sequences have a high LCSS overlap. A pairwise decision
is then correct when

- the aggregator merged a pair that truly overlaps *and* registered it
  with a small residual (a merge with a wildly wrong transform is an
  error, not a success), or
- the aggregator declined a pair that truly does not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.aggregation import AggregationResult, lcss_similarity
from repro.world.walker import CaptureSession


def _true_points(session: CaptureSession, interval: float = 1.0) -> np.ndarray:
    motion = session.ground_truth
    t0, t1 = float(motion.times[0]), float(motion.times[-1])
    ts = np.arange(t0, t1 + 1e-9, interval)
    xs = np.interp(ts, motion.times, motion.positions[:, 0])
    ys = np.interp(ts, motion.times, motion.positions[:, 1])
    return np.stack([xs, ys], axis=1)


def ground_truth_overlap(
    a: CaptureSession,
    b: CaptureSession,
    epsilon: float = 1.5,
    min_s3: float = 0.45,
) -> bool:
    """True when the two sessions' true paths share a common sub-path."""
    pts_a = _true_points(a)
    pts_b = _true_points(b)
    _, s3 = lcss_similarity(pts_a, pts_b, epsilon=epsilon, delta=10**6)
    return s3 >= min_s3


@dataclass(frozen=True)
class MatchingAccuracyReport:
    """Pairwise decision accuracy of an aggregation run."""

    n_pairs: int
    n_correct: int
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def accuracy(self) -> float:
        return self.n_correct / self.n_pairs if self.n_pairs else 0.0


def evaluate_matching_accuracy(
    sessions: Sequence[CaptureSession],
    result: AggregationResult,
    epsilon: float = 1.5,
    transform_tolerance: float = 2.5,
) -> MatchingAccuracyReport:
    """Score an aggregation's pairwise merge decisions against ground truth.

    ``transform_tolerance`` (m) bounds the residual between a merged
    pair's registered trajectories and the ground-truth relative placement:
    merges with a larger registration error count as false positives even
    when the pair truly overlaps.
    """
    should: dict = {}
    for cand in result.candidates:
        i, j = cand.index_a, cand.index_b
        if (i, j) not in should:
            should[(i, j)] = ground_truth_overlap(
                sessions[i], sessions[j], epsilon=epsilon
            )
    tp = fp = tn = fn = 0
    for cand in result.candidates:
        key = (cand.index_a, cand.index_b)
        truly_overlaps = should[key]
        if cand.mergeable:
            if truly_overlaps and _transform_residual(
                sessions[cand.index_a], sessions[cand.index_b], cand
            ) <= transform_tolerance:
                tp += 1
            else:
                fp += 1
        else:
            if truly_overlaps:
                fn += 1
            else:
                tn += 1
    n_pairs = tp + fp + tn + fn
    return MatchingAccuracyReport(
        n_pairs=n_pairs,
        n_correct=tp + tn,
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )


def _transform_residual(
    a: CaptureSession, b: CaptureSession, candidate
) -> float:
    """Median registration error (m) of a merge's transform.

    Applies the candidate transform to B's *device* trajectory and
    measures how far each point lands from B's ground-truth path after
    expressing both in A's ground-truth frame (A's device frame is assumed
    approximately geo-aligned, as the paper's Task-1 annotation makes it).
    """
    t = candidate.transform
    moved = t.apply_array(
        np.array([[p.x, p.y] for p in b.device_trajectory.points])
    )
    truth_b = _true_points(b, interval=0.5)
    # Median nearest-neighbour distance from registered points to truth.
    dists = []
    for x, y in moved[:: max(1, len(moved) // 20)]:
        d = np.min(np.hypot(truth_b[:, 0] - x, truth_b[:, 1] - y))
        dists.append(d)
    return float(np.median(dists)) if dists else float("inf")
