"""Text rendering of evaluation results in the paper's shapes.

Benchmarks print their tables/series through these helpers so every
experiment's output looks uniform and diffs cleanly run-to-run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.eval.cdf import empirical_cdf


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width text table with a title rule."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title), fmt(list(headers)), rule]
    lines += [fmt(row) for row in str_rows]
    return "\n".join(lines)


def render_cdf_series(
    title: str,
    series: Dict[str, Sequence[float]],
    thresholds: Optional[Sequence[float]] = None,
    unit: str = "",
) -> str:
    """Render named CDF series at selected thresholds, plus their means.

    ``thresholds`` defaults to the deciles of the pooled samples, giving a
    text rendering of the same staircase the paper plots.
    """
    pooled = [v for values in series.values() for v in values]
    if not pooled:
        return f"{title}\n(no samples)"
    if thresholds is None:
        xs, _ = empirical_cdf(pooled)
        idx = [int(round(q * (len(xs) - 1))) for q in
               (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
        thresholds = sorted({float(xs[i]) for i in idx})
    headers = [f"CDF @ {t:g}{unit}" for t in thresholds]
    rows = []
    for name, values in series.items():
        from repro.eval.cdf import cdf_at, mean_of

        row = [name] + [f"{cdf_at(values, t):.2f}" for t in thresholds]
        row.append(f"{mean_of(values):.3g}{unit}")
        rows.append(row)
    return render_table(title, ["series"] + list(headers) + ["mean"], rows)


def render_comparison(
    title: str,
    ours: Dict[str, float],
    paper: Dict[str, float],
    unit: str = "",
) -> str:
    """Side-by-side 'measured vs paper' table for EXPERIMENTS.md."""
    keys = sorted(set(ours) | set(paper))
    rows: list[Tuple[str, str, str]] = []
    for key in keys:
        measured = f"{ours[key]:.3g}{unit}" if key in ours else "-"
        reported = f"{paper[key]:.3g}{unit}" if key in paper else "-"
        rows.append((key, measured, reported))
    return render_table(title, ["metric", "measured", "paper"], rows)
