"""ASCII figure rendering: CDF staircases and series plots in plain text.

The paper's figures are matplotlib-style plots; offline we render the
same data as terminal graphics so every benchmark's output is a complete,
self-contained reproduction artifact (teed to the results file).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.eval.cdf import empirical_cdf

_MARKS = "O*x+#@%&"


def render_ascii_plot(
    title: str,
    series: Dict[str, Sequence[tuple]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter/step plot of named (x, y) series on a character canvas."""
    points = [
        (float(x), float(y))
        for values in series.values()
        for x, y in values
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    canvas = np.full((height, width), " ", dtype="<U1")
    for s_idx, (name, values) in enumerate(series.items()):
        mark = _MARKS[s_idx % len(_MARKS)]
        for x, y in values:
            col = int((float(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((float(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[height - 1 - row, col] = mark

    lines = [title]
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label))
    for r in range(height):
        label = top_label if r == 0 else (bottom_label if r == height - 1 else "")
        lines.append(f"{label.rjust(gutter)} |" + "".join(canvas[r]))
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)
    x_axis = f"{x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width // 2)
    lines.append(" " * (gutter + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 2) + f"x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def render_cdf_plot(
    title: str,
    samples: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    unit: str = "",
) -> str:
    """ASCII staircase CDF plot of named sample sets (the Fig. 7/8 style)."""
    series = {}
    for name, values in samples.items():
        xs, ps = empirical_cdf(values)
        if xs.size == 0:
            continue
        # Densify each staircase so the plot reads as a curve.
        dense = []
        for x, p in zip(xs, ps):
            dense.append((x, p))
        series[name] = dense
    if not series:
        return f"{title}\n(no samples)"
    return render_ascii_plot(
        title, series, width=width, height=height,
        x_label=f"value {unit}".strip(), y_label="CDF",
    )


def render_sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line sparkline of a numeric series (8-level block glyphs)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if width is not None and arr.size > width:
        # Downsample by block means.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return "▄" * arr.size
    glyphs = "▁▂▃▄▅▆▇█"
    idx = ((arr - lo) / (hi - lo) * (len(glyphs) - 1)).astype(int)
    return "".join(glyphs[i] for i in idx)
