"""CLI for the accuracy scorecard and its CI gate.

Usage:

    python -m repro.eval                               # quick grid to stdout
    python -m repro.eval --profile full                # adds night + sweep cells
    python -m repro.eval --output accuracy.json        # write the JSON report
    python -m repro.eval --report-dir report/          # table + text CDF plots
    python -m repro.eval --check ACCURACY_baseline.json
    python -m repro.eval --update-baseline ACCURACY_baseline.json
    python -m repro.eval --cells Lab1/day/u03 --override min_visits=3

``--check`` exits 1 when any scenario cell's quality drifts past its
per-metric tolerance band versus the baseline file — the CI quality gate,
the exact counterpart of ``python -m repro.bench --check``. Baseline
files share one read/modify/write helper with the perf harness
(:mod:`repro.bench.baseline`), so ``--update-baseline`` preserves any
frozen ``pre_pr*`` records the same way.

Unlike the perf gate, no calibration is needed: quality metrics carry no
machine speed in them, so the committed numbers reproduce bit-identically
on any host (two consecutive runs must produce byte-equal reports — CI
and tests enforce this).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Optional

from repro.bench.baseline import (
    load_json_report,
    update_baseline_file,
    write_json_report,
)
from repro.core.config import CrowdMapConfig
from repro.eval.scorecard import (
    ACCURACY_SCHEMA_VERSION,
    compare_to_accuracy_baseline,
    render_accuracy_cdfs,
    render_crowd_sweep,
    render_scorecard_table,
    run_scorecard,
)
from repro.world.scenarios import find_scenarios, scenarios_for_profile


def parse_overrides(pairs) -> dict:
    """``field=value`` strings -> keyword dict for ``with_overrides``.

    Values parse as Python literals when possible (``min_visits=3``,
    ``surf_prefetch=False``) and fall back to plain strings
    (``worker_backend=process``).
    """
    overrides = {}
    for pair in pairs or ():
        field, sep, raw = pair.partition("=")
        if not sep or not field:
            raise ValueError(f"override {pair!r} is not of the form field=value")
        try:
            value = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            value = raw
        overrides[field] = value
    return overrides


def build_config(override_pairs) -> Optional[CrowdMapConfig]:
    overrides = parse_overrides(override_pairs)
    if not overrides:
        return None
    return CrowdMapConfig().with_overrides(**overrides)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="CrowdMap reconstruction-accuracy scorecard",
    )
    parser.add_argument(
        "--profile", choices=("quick", "full"), default="quick",
        help="quick: the committed-baseline grid; "
             "full: adds the remaining night cells and the crowd-size sweep",
    )
    parser.add_argument(
        "--cells", action="append", default=None, metavar="KEY",
        help="score only the named scenario cell (repeatable); "
             "--check then compares only the scored cells",
    )
    parser.add_argument(
        "--list-cells", action="store_true",
        help="print the profile's cell keys and exit",
    )
    parser.add_argument(
        "--override", action="append", default=None, metavar="FIELD=VALUE",
        help="CrowdMapConfig override for the pipeline under test "
             "(repeatable; used by degradation tests and ablations)",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the JSON scorecard here"
    )
    parser.add_argument(
        "--report-dir", metavar="DIR",
        help="write the scorecard table, crowd sweep and CDF text plots here",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON and exit 1 on quality drift",
    )
    parser.add_argument(
        "--tolerance-scale", type=float, default=1.0,
        help="multiplier on every per-metric tolerance band (default 1.0)",
    )
    parser.add_argument(
        "--update-baseline", metavar="BASELINE",
        help="rewrite the baseline from this run (keeps its pre_pr* records)",
    )
    args = parser.parse_args(argv)

    specs = scenarios_for_profile(args.profile)
    if args.list_cells:
        for spec in specs:
            print(spec.key)
        return 0
    try:
        specs = find_scenarios(specs, args.cells)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        config = build_config(args.override)
    except (TypeError, ValueError) as exc:
        print(f"bad --override: {exc}", file=sys.stderr)
        return 2

    report = run_scorecard(specs, config, log=print)
    print()
    print(render_scorecard_table(report))

    if args.output:
        write_json_report(report, args.output)
        print(f"\nreport written to {args.output}")

    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
        artifacts = {"scorecard.txt": render_scorecard_table(report) + "\n"}
        artifacts["crowd_sweep.txt"] = render_crowd_sweep(report) + "\n"
        for metric, plot in render_accuracy_cdfs(report).items():
            artifacts[f"cdf_{metric}.txt"] = plot + "\n"
        for name, text in sorted(artifacts.items()):
            with open(os.path.join(args.report_dir, name), "w") as fh:
                fh.write(text)
        print(f"report artifacts written to {args.report_dir}/")

    if args.update_baseline:
        update_baseline_file(
            args.update_baseline, report, ACCURACY_SCHEMA_VERSION
        )
        print(f"baseline updated: {args.update_baseline}")

    if args.check:
        baseline = load_json_report(args.check, ACCURACY_SCHEMA_VERSION)
        problems = compare_to_accuracy_baseline(
            report,
            baseline,
            tolerance_scale=args.tolerance_scale,
            # A --cells subset deliberately scores fewer cells than the
            # baseline holds; only a full run enforces completeness.
            require_all_cells=args.cells is None,
        )
        if problems:
            print(f"\nFAIL: {len(problems)} quality drift(s) vs {args.check}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"\nOK: within tolerance bands of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
