"""Room layout and floor plan metrics (paper Section V.B-C, Fig. 8).

- **room area error**: |generated area - true area| / true area;
- **room aspect ratio error**: |generated AR - true AR| / true AR, with
  aspect ratio defined as room length over width;
- **room location error**: distance (m) between the placed room centre
  and the ground-truth room centre.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.floorplan import FloorPlanResult
from repro.core.room_layout import RoomLayout
from repro.world.floorplan_model import FloorPlan, Room


def room_area_error(layout: RoomLayout, room: Room) -> float:
    """Relative area error of a reconstructed room, as a fraction."""
    true_area = room.area()
    if true_area <= 0:
        raise ValueError("ground-truth room area must be positive")
    return abs(layout.area() - true_area) / true_area


def room_aspect_ratio_error(layout: RoomLayout, room: Room) -> float:
    """Relative aspect-ratio error of a reconstructed room, as a fraction."""
    true_ar = room.aspect_ratio()
    return abs(layout.aspect_ratio() - true_ar) / true_ar


def room_location_error(center_x: float, center_y: float, room: Room) -> float:
    """Distance (m) between a placed room centre and the ground truth."""
    return math.hypot(center_x - room.center.x, center_y - room.center.y)


@dataclass
class RoomErrorReport:
    """Per-room errors for one reconstruction."""

    building: str
    area_errors: Dict[str, float] = field(default_factory=dict)
    aspect_ratio_errors: Dict[str, float] = field(default_factory=dict)
    location_errors: Dict[str, float] = field(default_factory=dict)

    def mean_area_error(self) -> float:
        return _mean(self.area_errors)

    def mean_aspect_ratio_error(self) -> float:
        return _mean(self.aspect_ratio_errors)

    def mean_location_error(self) -> float:
        return _mean(self.location_errors)

    def max_location_error(self) -> float:
        return max(self.location_errors.values()) if self.location_errors else 0.0


def _mean(values: Dict[str, float]) -> float:
    if not values:
        return 0.0
    return sum(values.values()) / len(values)


def evaluate_rooms(
    result_layouts: Sequence[RoomLayout],
    room_hints: Sequence[Optional[str]],
    plan: FloorPlan,
    floorplan: Optional[FloorPlanResult] = None,
) -> RoomErrorReport:
    """Score reconstructed rooms against their ground-truth counterparts.

    ``room_hints`` carries the evaluation-only ground-truth association of
    each layout with a room name (from the SRS sessions' annotations).
    Location errors use the *placed* centres from ``floorplan`` when given
    (Fig. 8c scores the assembled plan), falling back to the raw layout
    centres otherwise.
    """
    report = RoomErrorReport(building=plan.name)
    for layout, hint in zip(result_layouts, room_hints):
        if hint is None:
            continue
        try:
            room = plan.room_by_name(hint)
        except KeyError:
            continue
        report.area_errors[hint] = room_area_error(layout, room)
        report.aspect_ratio_errors[hint] = room_aspect_ratio_error(layout, room)
        center = layout.center
        if floorplan is not None:
            try:
                center = floorplan.room_by_name(hint).center
            except KeyError:
                pass
        report.location_errors[hint] = room_location_error(
            center.x, center.y, room
        )
    return report
