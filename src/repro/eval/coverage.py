"""Crowd coverage analysis: how much of the building did the crowd see?

Reconstruction recall is bounded by what the crowd physically covered —
the paper's premise ("users would be able to move across all edges and
corners") fails exactly where coverage does. This module quantifies it:

- :func:`hallway_coverage` — fraction of ground-truth hallway cells within
  a body-width of any session's true path (the recall ceiling);
- :func:`room_coverage` — which rooms received an SRS spin;
- :func:`coverage_report` — a combined per-dataset summary.

These read the *hidden ground truth*, so they are evaluation-only tools:
they explain reconstruction scores, they are not available to the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.polygon_ops import rasterize_polygons
from repro.world.crowd import CrowdDataset
from repro.world.floorplan_model import FloorPlan


@dataclass(frozen=True)
class CoverageReport:
    """Coverage summary of one crowd dataset."""

    hallway_covered_fraction: float
    rooms_visited: Dict[str, bool]
    total_walk_length_m: float
    walks: int
    spins: int

    @property
    def rooms_visited_fraction(self) -> float:
        if not self.rooms_visited:
            return 0.0
        return sum(self.rooms_visited.values()) / len(self.rooms_visited)


def hallway_coverage(
    sessions: Sequence,
    plan: FloorPlan,
    reach_m: float = 1.25,
    cell_size: float = 0.5,
) -> float:
    """Fraction of hallway cells within ``reach_m`` of a true walked path."""
    points: List[np.ndarray] = []
    for session in sessions:
        if session.task != "SWS":
            continue
        points.append(session.ground_truth.positions)
    truth = rasterize_polygons(plan.hallway_polygons(), plan.bounds, cell_size)
    rows, cols = np.nonzero(truth)
    if rows.size == 0:
        return 0.0
    if not points:
        return 0.0
    walked = np.vstack(points)
    xs = plan.bounds.min_x + (cols + 0.5) * cell_size
    ys = plan.bounds.min_y + (rows + 0.5) * cell_size
    tree = cKDTree(walked)
    distances, _ = tree.query(np.stack([xs, ys], axis=1))
    return float((distances <= reach_m).mean())


def room_coverage(sessions: Sequence, plan: FloorPlan) -> Dict[str, bool]:
    """Which ground-truth rooms received at least one SRS spin."""
    visited = {room.name: False for room in plan.rooms}
    for session in sessions:
        if session.task == "SRS" and session.room_name in visited:
            visited[session.room_name] = True
    return visited


def coverage_report(dataset: CrowdDataset) -> CoverageReport:
    """Full coverage summary for one building's dataset."""
    walks = dataset.sws_sessions()
    total_length = 0.0
    for session in walks:
        positions = session.ground_truth.positions
        total_length += float(
            np.hypot(*np.diff(positions, axis=0).T).sum()
        )
    return CoverageReport(
        hallway_covered_fraction=hallway_coverage(dataset.sessions, dataset.plan),
        rooms_visited=room_coverage(dataset.sessions, dataset.plan),
        total_walk_length_m=total_length,
        walks=len(walks),
        spins=len(dataset.srs_sessions()),
    )
