"""Empirical CDF helpers for the paper's Fig. 7-8 style plots."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted sample values and their cumulative probabilities.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of samples
    ``<= xs[i]``; plotting ``ps`` against ``xs`` draws the standard
    staircase CDF.
    """
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    ps = np.arange(1, arr.size + 1) / arr.size
    return arr, ps


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples at or below ``threshold``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr <= threshold) / arr.size)


def mean_of(values: Sequence[float]) -> float:
    """Plain mean, 0 for empty input (the paper reports CDF means)."""
    arr = np.asarray(list(values), dtype=np.float64)
    return float(arr.mean()) if arr.size else 0.0


def percentile_of(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (q in [0, 100]) of the samples."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))
