"""Evaluation: the paper's metrics, CDFs and report rendering.

- :mod:`repro.eval.hallway_metrics` — hallway-shape precision/recall/F
  (Table I) with the paper's overlay alignment procedure;
- :mod:`repro.eval.room_metrics` — room area / aspect-ratio / location
  errors (Fig. 8);
- :mod:`repro.eval.cdf` — empirical CDF helper used by every CDF figure;
- :mod:`repro.eval.report` — text rendering of tables and CDF series in
  the shape the paper reports them;
- :mod:`repro.eval.scorecard` — the per-``(building, lighting, crowd)``
  reconstruction scorecard behind ``python -m repro.eval`` and the
  committed, CI-gated ``ACCURACY_baseline.json``.
"""

from repro.eval.hallway_metrics import evaluate_hallway_shape, HallwayShapeScore
from repro.eval.room_metrics import (
    room_area_error,
    room_aspect_ratio_error,
    room_location_error,
    evaluate_rooms,
    RoomErrorReport,
)
from repro.eval.cdf import empirical_cdf, cdf_at, mean_of
from repro.eval.matching_accuracy import (
    evaluate_matching_accuracy,
    ground_truth_overlap,
    MatchingAccuracyReport,
)
from repro.eval.report import render_table, render_cdf_series, render_comparison
from repro.eval.figures import render_ascii_plot, render_cdf_plot, render_sparkline
from repro.eval.scorecard import (
    FloorReconstructionReport,
    score_reconstruction,
    score_scenario,
    run_scorecard,
    compare_metric_bands,
    compare_to_accuracy_baseline,
    render_scorecard_table,
    render_crowd_sweep,
    ACCURACY_SCHEMA_VERSION,
)

__all__ = [
    "evaluate_hallway_shape",
    "HallwayShapeScore",
    "room_area_error",
    "room_aspect_ratio_error",
    "room_location_error",
    "evaluate_rooms",
    "RoomErrorReport",
    "empirical_cdf",
    "cdf_at",
    "mean_of",
    "evaluate_matching_accuracy",
    "ground_truth_overlap",
    "MatchingAccuracyReport",
    "render_table",
    "render_cdf_series",
    "render_comparison",
    "render_ascii_plot",
    "render_cdf_plot",
    "render_sparkline",
    "FloorReconstructionReport",
    "score_reconstruction",
    "score_scenario",
    "run_scorecard",
    "compare_metric_bands",
    "compare_to_accuracy_baseline",
    "render_scorecard_table",
    "render_crowd_sweep",
    "ACCURACY_SCHEMA_VERSION",
]
