"""Per-building reconstruction scorecard and the accuracy baseline gate.

The quality counterpart of ``repro.bench``: where the perf harness gates
*speed* against ``BENCH_baseline.json``, this module runs the full
pipeline over the seeded scenario matrix (:mod:`repro.world.scenarios`)
and scores every ``(building, lighting, crowd_size)`` cell against its
procedural ground truth, emitting a committed ``ACCURACY_baseline.json``
that CI bit-compares future runs against (within per-metric tolerance
bands).

One :class:`FloorReconstructionReport` per cell carries the paper's own
evaluation (Section V): hallway-skeleton precision/recall/F after the
overlay alignment (Table I), room area / aspect-ratio / location errors
(Fig. 8), plus three metrics the paper could not automate — room-shape
IoU against the exact ground-truth rectangles, the fraction of key-frames
localized into the common frame, and the residual rotation/translation of
the alignment itself (how far the reconstructed frame sat from truth).

Everything here must stay bit-deterministic per seed: no clock reads, no
unseeded RNG (crowdlint CM008 gates this module tree), floats rounded at
serialization so the JSON is byte-stable across platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline, ReconstructionResult
from repro.eval.cdf import mean_of
from repro.eval.hallway_metrics import evaluate_hallway_shape
from repro.eval.room_metrics import evaluate_rooms
from repro.geometry.polygon_ops import bounding_box_iou
from repro.world.floorplan_model import FloorPlan
from repro.world.scenarios import ScenarioSpec

#: Bump when the ACCURACY_baseline.json layout changes incompatibly.
ACCURACY_SCHEMA_VERSION = 1

#: Serialization precision: enough to resolve any real quality drift,
#: coarse enough that the JSON bit-compares across runs and platforms.
_ROUND = 4


@dataclass(frozen=True)
class FloorReconstructionReport:
    """Scorecard for one scenario cell, reconstruction vs ground truth."""

    building: str
    lighting: str
    crowd_size: int
    # Workload shape (sanity anchors: if these drift, the world changed,
    # not the pipeline).
    n_sessions: int
    n_frames: int
    n_keyframes: int
    sessions_quarantined: int
    # Pathway quality (paper Table I) + alignment residual.
    hallway_precision: float
    hallway_recall: float
    hallway_f: float
    alignment_rotation_error_deg: float
    alignment_translation_error_m: float
    # Localization: key-frame mass registered into the common frame.
    keyframes_localized_fraction: float
    # Room quality (paper Fig. 8 + exact-ground-truth IoU).
    rooms_total: int
    rooms_scored: int
    room_iou_mean: float
    room_area_error_mean: float
    room_aspect_error_mean: float
    room_location_error_mean: float
    room_location_error_max: float
    # Per-room samples (CDF material; keys are ground-truth room names).
    room_ious: Dict[str, float]
    room_location_errors: Dict[str, float]

    @property
    def rooms_scored_fraction(self) -> float:
        return self.rooms_scored / self.rooms_total if self.rooms_total else 0.0

    def to_json(self) -> dict:
        def r(value: float) -> float:
            return round(float(value), _ROUND)

        return {
            "building": self.building,
            "lighting": self.lighting,
            "crowd_size": self.crowd_size,
            "n_sessions": self.n_sessions,
            "n_frames": self.n_frames,
            "n_keyframes": self.n_keyframes,
            "sessions_quarantined": self.sessions_quarantined,
            "hallway_precision": r(self.hallway_precision),
            "hallway_recall": r(self.hallway_recall),
            "hallway_f": r(self.hallway_f),
            "alignment_rotation_error_deg": r(self.alignment_rotation_error_deg),
            "alignment_translation_error_m": r(self.alignment_translation_error_m),
            "keyframes_localized_fraction": r(self.keyframes_localized_fraction),
            "rooms_total": self.rooms_total,
            "rooms_scored": self.rooms_scored,
            "rooms_scored_fraction": r(self.rooms_scored_fraction),
            "room_iou_mean": r(self.room_iou_mean),
            "room_area_error_mean": r(self.room_area_error_mean),
            "room_aspect_error_mean": r(self.room_aspect_error_mean),
            "room_location_error_mean": r(self.room_location_error_mean),
            "room_location_error_max": r(self.room_location_error_max),
            "samples": {
                "room_iou": {k: r(v) for k, v in sorted(self.room_ious.items())},
                "room_location_error": {
                    k: r(v) for k, v in sorted(self.room_location_errors.items())
                },
            },
        }


def _fold_rotation(angle_deg: float) -> float:
    """Smallest absolute rotation equivalent to ``angle_deg`` (0..180]."""
    folded = math.fmod(angle_deg, 360.0)
    if folded < 0:
        folded += 360.0
    return min(folded, 360.0 - folded)


def _keyframes_localized(result: ReconstructionResult) -> tuple:
    """(total key-frames, key-frames in the largest registered component).

    A trajectory outside the dominant connected component of the merge
    graph was never registered into the common frame — its key-frames
    exist but are not *localized* on the shared map.
    """
    counts = [len(anchored.keyframes) for anchored in result.anchored]
    total = sum(counts)
    if not counts:
        return 0, 0
    components = result.aggregation.components or []
    localized = max(
        (sum(counts[i] for i in component if i < len(counts))
         for component in components),
        default=0,
    )
    return total, localized


def score_reconstruction(
    result: ReconstructionResult,
    plan: FloorPlan,
    lighting: str = "day",
    crowd_size: int = 0,
    n_sessions: int = 0,
    n_frames: int = 0,
) -> FloorReconstructionReport:
    """Score one finished reconstruction against its ground-truth plan."""
    hallway = evaluate_hallway_shape(result.skeleton, plan)
    alignment = hallway.alignment
    cell = result.skeleton.cell_size
    if result.skeleton.skeleton.any():
        translation_m = math.hypot(
            alignment.shift_rows, alignment.shift_cols
        ) * cell
        rotation_deg = _fold_rotation(alignment.rotation_deg)
    else:
        # No reconstructed cells: the alignment search degenerates to an
        # arbitrary zero-overlap transform; report no residual instead of
        # whichever shift the search visited first.
        translation_m = 0.0
        rotation_deg = 0.0

    hints = [pano.room_hint for pano in result.panoramas]
    rooms = evaluate_rooms(result.layouts, hints, plan, result.floorplan)

    room_ious: Dict[str, float] = {}
    for placed in result.floorplan.rooms:
        if placed.name is None:
            continue
        try:
            truth = plan.room_by_name(placed.name)
        except KeyError:
            continue
        room_ious[placed.name] = bounding_box_iou(
            placed.bounding_box(), truth.bounding_box()
        )

    n_keyframes, localized = _keyframes_localized(result)
    scored_names = set(room_ious) | set(rooms.location_errors)
    return FloorReconstructionReport(
        building=plan.name,
        lighting=lighting,
        crowd_size=crowd_size,
        n_sessions=n_sessions,
        n_frames=n_frames,
        n_keyframes=n_keyframes,
        sessions_quarantined=result.n_quarantined,
        hallway_precision=hallway.precision,
        hallway_recall=hallway.recall,
        hallway_f=hallway.f_measure,
        alignment_rotation_error_deg=rotation_deg,
        alignment_translation_error_m=translation_m,
        keyframes_localized_fraction=(
            localized / n_keyframes if n_keyframes else 0.0
        ),
        rooms_total=len(plan.rooms),
        rooms_scored=len(scored_names),
        room_iou_mean=mean_of(room_ious.values()),
        room_area_error_mean=rooms.mean_area_error(),
        room_aspect_error_mean=rooms.mean_aspect_ratio_error(),
        room_location_error_mean=rooms.mean_location_error(),
        room_location_error_max=rooms.max_location_error(),
        room_ious=room_ious,
        room_location_errors=dict(rooms.location_errors),
    )


def score_scenario(
    spec: ScenarioSpec, config: Optional[CrowdMapConfig] = None
) -> FloorReconstructionReport:
    """Generate one cell's world, run the full pipeline, score the result."""
    dataset = spec.generate()
    result = CrowdMapPipeline(config).run(dataset)
    return score_reconstruction(
        result,
        dataset.plan,
        lighting=spec.lighting,
        crowd_size=spec.n_users,
        n_sessions=len(dataset.sessions),
        n_frames=dataset.total_frames(),
    )


def run_scorecard(
    specs: Sequence[ScenarioSpec],
    config: Optional[CrowdMapConfig] = None,
    log: Callable[[str], None] = lambda line: None,
) -> dict:
    """Score every scenario cell; returns the JSON-ready report dict."""
    cells: Dict[str, dict] = {}
    for spec in specs:
        log(f"scoring {spec.key} ...")
        report = score_scenario(spec, config)
        cells[spec.key] = report.to_json()
        log(
            f"{spec.key:18s} F={report.hallway_f:.3f} "
            f"IoU={report.room_iou_mean:.3f} "
            f"loc_err={report.room_location_error_mean:.2f}m "
            f"kf_localized={report.keyframes_localized_fraction:.0%}"
        )
    return {"schema": ACCURACY_SCHEMA_VERSION, "cells": cells}


# ----------------------------------------------------------------------
# Baseline comparison (the CI gate)
# ----------------------------------------------------------------------

#: Score-like metrics (bigger is better): allowed absolute *drop* per cell.
SCORE_TOLERANCES: Dict[str, float] = {
    "hallway_precision": 0.08,
    "hallway_recall": 0.08,
    "hallway_f": 0.06,
    "room_iou_mean": 0.08,
    "rooms_scored_fraction": 0.0,  # losing a whole room is always drift
    "keyframes_localized_fraction": 0.10,
}

#: Error-like metrics (smaller is better): allowed absolute *rise* per
#: cell, in the metric's own unit (fractions, metres, degrees).
ERROR_TOLERANCES: Dict[str, float] = {
    "room_area_error_mean": 0.08,
    "room_aspect_error_mean": 0.08,
    "room_location_error_mean": 0.75,
    "room_location_error_max": 1.50,
    "alignment_rotation_error_deg": 15.0,
    "alignment_translation_error_m": 1.00,
}


def compare_metric_bands(
    current: Dict[str, float],
    base: Dict[str, float],
    score_tolerances: Dict[str, float],
    error_tolerances: Dict[str, float],
    tolerance_scale: float = 1.0,
    label: str = "",
) -> List[str]:
    """Band-compare one metric dict against a reference, human-readable.

    Score-like metrics may drop by at most their band below the
    reference; error-like metrics may rise by at most theirs. Metrics
    absent from either side are skipped; improvements never fail. Shared
    by the accuracy baseline gate and the fleet fused-vs-central
    comparison — any consumer with "bigger is better" / "smaller is
    better" tolerance tables.
    """
    if tolerance_scale < 0:
        raise ValueError("tolerance_scale must be >= 0")
    prefix = f"{label}: " if label else ""
    problems: List[str] = []
    for metric, band in sorted(score_tolerances.items()):
        if metric not in base or metric not in current:
            continue
        floor = base[metric] - band * tolerance_scale
        if current[metric] < floor:
            problems.append(
                f"{prefix}{metric} {current[metric]:.4f} dropped below "
                f"baseline {base[metric]:.4f} - {band * tolerance_scale:.4f}"
            )
    for metric, band in sorted(error_tolerances.items()):
        if metric not in base or metric not in current:
            continue
        ceiling = base[metric] + band * tolerance_scale
        if current[metric] > ceiling:
            problems.append(
                f"{prefix}{metric} {current[metric]:.4f} rose above "
                f"baseline {base[metric]:.4f} + {band * tolerance_scale:.4f}"
            )
    return problems


def compare_to_accuracy_baseline(
    report: dict,
    baseline: dict,
    tolerance_scale: float = 1.0,
    require_all_cells: bool = True,
) -> List[str]:
    """Quality regressions versus the committed baseline, human-readable.

    Every cell present in both reports is compared metric-by-metric
    against the per-metric tolerance bands (scaled by
    ``tolerance_scale``); improvements never fail. With
    ``require_all_cells`` (the CI default) a baseline cell missing from
    the fresh report is itself a failure — a gate that silently stops
    measuring a building has not passed.
    """
    if tolerance_scale < 0:
        raise ValueError("tolerance_scale must be >= 0")
    problems: List[str] = []
    base_cells = baseline.get("cells", {})
    run_cells = report.get("cells", {})
    if require_all_cells:
        for key in sorted(set(base_cells) - set(run_cells)):
            problems.append(f"{key}: cell present in baseline but not scored")
    for key in sorted(set(base_cells) & set(run_cells)):
        problems.extend(
            compare_metric_bands(
                run_cells[key],
                base_cells[key],
                SCORE_TOLERANCES,
                ERROR_TOLERANCES,
                tolerance_scale=tolerance_scale,
                label=key,
            )
        )
    return problems


# ----------------------------------------------------------------------
# Text rendering (scorecard table, CDFs, crowd-size sweep)
# ----------------------------------------------------------------------


def render_scorecard_table(report: dict) -> str:
    """Fixed-width table of every cell's headline metrics."""
    from repro.eval.report import render_table

    rows = []
    for key in sorted(report.get("cells", {})):
        cell = report["cells"][key]
        rows.append(
            (
                key,
                f"{cell['hallway_precision']:.1%}",
                f"{cell['hallway_recall']:.1%}",
                f"{cell['hallway_f']:.1%}",
                f"{cell['room_iou_mean']:.2f}",
                f"{cell['room_location_error_mean']:.2f}m",
                f"{cell['keyframes_localized_fraction']:.0%}",
                f"{cell['rooms_scored']}/{cell['rooms_total']}",
            )
        )
    return render_table(
        "Reconstruction scorecard (per scenario cell)",
        ["cell", "P", "R", "F", "room IoU", "loc err", "kf localized", "rooms"],
        rows,
    )


def collect_samples(report: dict) -> Dict[str, List[float]]:
    """Pool the per-room sample series across cells (CDF material)."""
    pooled: Dict[str, List[float]] = {}
    for key in sorted(report.get("cells", {})):
        samples = report["cells"][key].get("samples", {})
        for metric in sorted(samples):
            pooled.setdefault(metric, []).extend(
                samples[metric][name] for name in sorted(samples[metric])
            )
    return pooled


def render_accuracy_cdfs(report: dict) -> Dict[str, str]:
    """Named text CDF plots over the pooled per-room samples."""
    from repro.eval.figures import render_cdf_plot

    plots: Dict[str, str] = {}
    units = {"room_iou": "", "room_location_error": " (m)"}
    for metric, values in collect_samples(report).items():
        if not values:
            continue
        plots[metric] = render_cdf_plot(
            f"CDF: {metric}{units.get(metric, '')} "
            f"({len(values)} rooms, all cells)",
            {metric: values},
        )
    return plots


def render_crowd_sweep(report: dict) -> str:
    """Accuracy versus crowd size, per (building, lighting) series.

    The sweep the paper could not collect: with procedural ground truth
    the quality-vs-#users curve (its Fig. 7a premise: quality grows with
    trajectory quantity) regenerates automatically from the full matrix.
    """
    from repro.eval.report import render_table

    series: Dict[tuple, List[tuple]] = {}
    for cell in report.get("cells", {}).values():
        series.setdefault((cell["building"], cell["lighting"]), []).append(
            (
                cell["crowd_size"],
                cell["hallway_f"],
                cell["room_iou_mean"],
                cell["keyframes_localized_fraction"],
            )
        )
    rows = []
    for (building, lighting), points in sorted(series.items()):
        for n_users, f, iou, localized in sorted(points):
            rows.append(
                (
                    building,
                    lighting,
                    n_users,
                    f"{f:.1%}",
                    f"{iou:.2f}",
                    f"{localized:.0%}",
                )
            )
    return render_table(
        "Accuracy vs crowd size",
        ["building", "lighting", "#users", "hallway F", "room IoU", "kf localized"],
        rows,
    )
