"""Floor plan modeling: merge rooms with the path skeleton (Section III.D).

Each reconstructed room arrives with an anchor position (where its
panorama was captured, in the skeleton's frame). The force-directed room
arrangement (Eades' spring model, as in the paper) then settles the final
centres: a spring attracts every room toward its anchored position, while
repulsive forces push apart rooms that overlap each other and rooms that
intrude into the hallway skeleton, iterating until the net force
vanishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.core.room_layout import RoomLayout
from repro.core.skeleton import SkeletonResult
from repro.geometry.primitives import BoundingBox, Point


@dataclass
class PlacedRoom:
    """A room layout with its final centre in the floor-plan frame."""

    layout: RoomLayout
    center: Point
    name: Optional[str] = None

    def bounding_box(self) -> BoundingBox:
        # The room rectangle is oriented; use its axis-aligned bound for
        # overlap forces (orientations are near-axis-aligned in practice).
        hw = self.layout.width / 2.0
        hd = self.layout.depth / 2.0
        c, s = abs(math.cos(self.layout.orientation)), abs(math.sin(self.layout.orientation))
        half_x = hw * c + hd * s
        half_y = hw * s + hd * c
        return BoundingBox(
            self.center.x - half_x,
            self.center.y - half_y,
            self.center.x + half_x,
            self.center.y + half_y,
        )


@dataclass
class FloorPlanResult:
    """The assembled floor plan: skeleton plus arranged rooms."""

    skeleton: SkeletonResult
    rooms: List[PlacedRoom]

    def room_by_name(self, name: str) -> PlacedRoom:
        for room in self.rooms:
            if room.name == name:
                return room
        raise KeyError(f"no placed room named {name!r}")

    def render_ascii(self, max_width: int = 100) -> str:
        """Top-down ASCII rendering: '#' hallway, letters for rooms."""
        mask = self.skeleton.skeleton
        rows, cols = mask.shape
        step = max(1, int(np.ceil(cols / max_width)))
        canvas = np.full(
            ((rows + step - 1) // step, (cols + step - 1) // step), " ", dtype="<U1"
        )
        small = mask[::step, ::step]
        canvas[: small.shape[0], : small.shape[1]][small] = "#"
        bounds = self.skeleton.bounds
        cell = self.skeleton.cell_size * step
        for i, room in enumerate(self.rooms):
            bb = room.bounding_box()
            letter = chr(ord("A") + i % 26)
            c0 = int((bb.min_x - bounds.min_x) / cell)
            c1 = int((bb.max_x - bounds.min_x) / cell)
            r0 = int((bb.min_y - bounds.min_y) / cell)
            r1 = int((bb.max_y - bounds.min_y) / cell)
            for r in range(max(0, r0), min(canvas.shape[0], r1 + 1)):
                for c in range(max(0, c0), min(canvas.shape[1], c1 + 1)):
                    on_edge = r in (r0, r1) or c in (c0, c1)
                    canvas[r, c] = letter if on_edge else canvas[r, c]
        # Row 0 is south; print north-up.
        return "\n".join("".join(row) for row in canvas[::-1])


def _overlap_vector(a: BoundingBox, b: BoundingBox) -> Optional[Tuple[float, float]]:
    """Minimum-translation vector pushing ``a`` out of ``b`` (or None)."""
    dx = min(a.max_x, b.max_x) - max(a.min_x, b.min_x)
    dy = min(a.max_y, b.max_y) - max(a.min_y, b.min_y)
    if dx <= 0 or dy <= 0:
        return None
    # Push along the axis of least penetration, away from b's centre.
    if dx < dy:
        direction = 1.0 if a.center.x >= b.center.x else -1.0
        return (direction * dx, 0.0)
    direction = 1.0 if a.center.y >= b.center.y else -1.0
    return (0.0, direction * dy)


class FloorPlanAssembler:
    """Force-directed arrangement of rooms around the path skeleton."""

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()

    def _skeleton_overlap_force(
        self, room: PlacedRoom, skeleton: SkeletonResult
    ) -> Tuple[float, float]:
        """Repulsion pushing a room off the hallway skeleton cells."""
        bb = room.bounding_box()
        bounds = skeleton.bounds
        cell = skeleton.cell_size
        mask = skeleton.skeleton
        c0 = max(0, int((bb.min_x - bounds.min_x) / cell))
        c1 = min(mask.shape[1], int(np.ceil((bb.max_x - bounds.min_x) / cell)))
        r0 = max(0, int((bb.min_y - bounds.min_y) / cell))
        r1 = min(mask.shape[0], int(np.ceil((bb.max_y - bounds.min_y) / cell)))
        if r0 >= r1 or c0 >= c1:
            return (0.0, 0.0)
        window = mask[r0:r1, c0:c1]
        overlap = np.count_nonzero(window)
        if overlap == 0:
            return (0.0, 0.0)
        rows, cols = np.nonzero(window)
        ox = bounds.min_x + (c0 + cols.mean() + 0.5) * cell
        oy = bounds.min_y + (r0 + rows.mean() + 0.5) * cell
        away_x = room.center.x - ox
        away_y = room.center.y - oy
        norm = math.hypot(away_x, away_y)
        if norm < 1e-9:
            away_x, away_y, norm = 1.0, 0.0, 1.0
        strength = overlap * cell * cell / max(room.layout.area(), 1e-6)
        return (away_x / norm * strength, away_y / norm * strength)

    def arrange(
        self,
        skeleton: SkeletonResult,
        layouts: Sequence[RoomLayout],
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> FloorPlanResult:
        """Run the spring relaxation and return the assembled floor plan."""
        cfg = self.config
        names = list(names) if names is not None else [None] * len(layouts)
        rooms = [
            PlacedRoom(layout=lay, center=lay.center, name=name)
            for lay, name in zip(layouts, names)
        ]
        anchors = [lay.center for lay in layouts]
        for _ in range(cfg.force_iterations):
            max_move = 0.0
            for i, room in enumerate(rooms):
                fx = cfg.force_attract * (anchors[i].x - room.center.x)
                fy = cfg.force_attract * (anchors[i].y - room.center.y)
                bb = room.bounding_box()
                for j, other in enumerate(rooms):
                    if i == j:
                        continue
                    mtv = _overlap_vector(bb, other.bounding_box())
                    if mtv is not None:
                        fx += cfg.force_repulse * mtv[0] / 2.0
                        fy += cfg.force_repulse * mtv[1] / 2.0
                sx, sy = self._skeleton_overlap_force(room, skeleton)
                fx += cfg.force_repulse * sx
                fy += cfg.force_repulse * sy
                # Damped displacement step.
                step_x = np.clip(fx, -0.5, 0.5)
                step_y = np.clip(fy, -0.5, 0.5)
                room.center = Point(room.center.x + step_x, room.center.y + step_y)
                max_move = max(max_move, abs(step_x), abs(step_y))
            if max_move < cfg.force_tolerance:
                break
        return FloorPlanResult(skeleton=skeleton, rooms=rooms)
