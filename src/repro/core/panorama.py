"""Indoor panorama generation (paper Section III.C.I).

After aggregation, a skeleton cell can hold several key-frames — from an
SRS spin at that spot or from multiple merged trajectories. Using each
key-frame's inertial direction change Δω, the builder selects a series of
overlapping key-frames whose viewing angles (i) pairwise overlap and
(ii) jointly cover 360 degrees (the Overlap/Cover model of Fig. 4), then
composites them into a cylindrical panorama (AutoStitch's role).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyFrame
from repro.geometry.primitives import Point
from repro.vision.stitching import (
    Panorama,
    covers_full_circle,
    select_panorama_frames,
    stitch_cylindrical,
)
from repro.world.renderer import DEFAULT_FOV


@dataclass
class RoomPanorama:
    """A stitched room panorama with its provenance."""

    panorama: Panorama
    capture_position: Point  # camera position estimate (skeleton frame)
    session_ids: List[str] = field(default_factory=list)
    room_hint: Optional[str] = None

    @property
    def width(self) -> int:
        return self.panorama.width

    @property
    def height(self) -> int:
        return self.panorama.height


class PanoramaCoverageError(ValueError):
    """The candidate key-frames cannot form a full 360-degree panorama.

    Carries enough context (candidate count, room hint) for the
    pipeline's quarantine report to say *which* group failed and why,
    without the caller having to re-derive it.
    """

    def __init__(self, message: str, n_keyframes: int = 0,
                 room_hint: Optional[str] = None):
        super().__init__(message)
        self.n_keyframes = n_keyframes
        self.room_hint = room_hint


class PanoramaBuilder:
    """Selects overlapping key-frames and stitches room panoramas."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        horizontal_fov: float = DEFAULT_FOV,
    ):
        self.config = config or CrowdMapConfig()
        self.horizontal_fov = horizontal_fov

    def check_coverage(self, keyframes: Sequence[KeyFrame]) -> bool:
        """The paper's two panorama-candidate criteria (Fig. 4)."""
        frames = [kf.frame for kf in keyframes]
        return covers_full_circle(
            frames, self.horizontal_fov,
            min_overlap=self.config.panorama_min_overlap,
        )

    def build(
        self,
        keyframes: Sequence[KeyFrame],
        capture_position: Point,
        room_hint: Optional[str] = None,
    ) -> RoomPanorama:
        """Select key-frames by their Δω and stitch the 360-degree panorama.

        Raises :class:`PanoramaCoverageError` when the key-frames cannot
        cover the full circle with the required pairwise overlap, or when
        the stitched result leaves more than ``panorama_max_gap`` of its
        columns empty.
        """
        if not keyframes:
            raise PanoramaCoverageError(
                "no key-frames supplied", room_hint=room_hint
            )
        bad_headings = [
            kf for kf in keyframes if not math.isfinite(kf.heading)
        ]
        if bad_headings:
            raise PanoramaCoverageError(
                f"{len(bad_headings)} key-frame(s) carry non-finite headings "
                "(corrupt inertial stream)",
                n_keyframes=len(keyframes), room_hint=room_hint,
            )
        if not self.check_coverage(keyframes):
            raise PanoramaCoverageError(
                "key-frames do not cover 360 degrees with sufficient overlap",
                n_keyframes=len(keyframes), room_hint=room_hint,
            )
        frames = [kf.frame for kf in keyframes]
        selected = select_panorama_frames(
            frames, self.horizontal_fov,
            min_overlap=self.config.panorama_min_overlap,
        )
        if not covers_full_circle(
            selected, self.horizontal_fov,
            min_overlap=self.config.panorama_min_overlap,
        ):
            # The greedy sweep can under-select near the wrap point; fall
            # back to stitching every candidate key-frame.
            selected = frames
        panorama = stitch_cylindrical(
            selected,
            horizontal_fov=self.horizontal_fov,
            panorama_width=self.config.panorama_width,
        )
        gap = panorama.gap_fraction()
        if gap > self.config.panorama_max_gap:
            raise PanoramaCoverageError(
                f"stitched panorama has {gap:.0%} uncovered columns",
                n_keyframes=len(keyframes), room_hint=room_hint,
            )
        session_ids = sorted({kf.frame.user_id for kf in keyframes if kf.frame.user_id})
        return RoomPanorama(
            panorama=panorama,
            capture_position=capture_position,
            session_ids=session_ids,
            room_hint=room_hint,
        )
