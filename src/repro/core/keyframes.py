"""Video key-frame selection (paper Section III.B.I).

Processing every frame with SURF was the paper's bottleneck, so frames are
first thinned: a HOG descriptor summarizes each frame's gradient structure,
consecutive frames are compared with a normalized cross-correlation score
``Scc``, and frames too similar to the last kept key-frame are dropped —
keeping only "frames with noticeable camera motion".

A :class:`KeyFrame` caches every signature the later comparison stages
need (color histogram, shape signature, wavelet signature, SURF features),
so each is computed exactly once per key-frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.vision.color_histogram import chromaticity_histogram
from repro.vision.filters import gaussian_blur
from repro.vision.hog import hog_descriptor, hog_similarity
from repro.vision.image import to_grayscale
from repro.vision.image import Frame
from repro.vision.shape_matching import shape_signature
from repro.vision.surf import SurfFeature, detect_and_describe
from repro.vision.wavelet import WaveletSignature, wavelet_signature


class KeyframeSelectionError(ValueError):
    """A session's frames cannot yield key-frames (corrupt or empty pixels).

    Crowdsourced uploads arrive damaged — dropped chunks, codec bit-rot —
    and NaN pixels would otherwise flow silently into every downstream
    signature. Raising here gives the pipeline a clean per-session
    quarantine point instead of a poisoned reconstruction.
    """

    def __init__(self, message: str, session_id: str = "",
                 frame_index: Optional[int] = None):
        super().__init__(message)
        self.session_id = session_id
        self.frame_index = frame_index


@dataclass
class KeyFrame:
    """A selected key-frame with its cached comparison signatures."""

    frame: Frame
    keyframe_id: str
    hog: np.ndarray
    color: Optional[np.ndarray] = None
    shape: Optional[np.ndarray] = None
    wavelet: Optional[WaveletSignature] = None
    surf: Optional[List[SurfFeature]] = None
    _config: CrowdMapConfig = field(default_factory=CrowdMapConfig, repr=False)

    @property
    def timestamp(self) -> float:
        return self.frame.timestamp

    @property
    def heading(self) -> float:
        return self.frame.heading

    def ensure_signatures(self) -> None:
        """Compute the cheap S1 signatures if not already cached."""
        if self.color is None:
            # Illumination-invariant variant: uploads span day and night
            # lighting, so the S1 color rung must not key on exposure.
            self.color = chromaticity_histogram(self.frame.pixels)
        if self.shape is None:
            self.shape = shape_signature(self.frame.pixels)
        if self.wavelet is None:
            self.wavelet = wavelet_signature(self.frame.pixels)

    def ensure_surf(self) -> List[SurfFeature]:
        """Compute (and cache) the frame's SURF features."""
        if self.surf is None:
            self.surf = detect_and_describe(
                self.frame.pixels,
                threshold=self._config.surf_response_threshold,
                max_features=self._config.surf_max_features,
            )
        return self.surf


def select_keyframes(
    frames: Sequence[Frame],
    config: Optional[CrowdMapConfig] = None,
    session_id: str = "",
) -> List[KeyFrame]:
    """Thin a frame sequence into key-frames by HOG cross-correlation.

    The first frame is always kept; each subsequent frame is kept when its
    HOG similarity ``Scc`` to the *last kept* key-frame falls below the
    ``keyframe_ncc_threshold`` (``h_g``) — i.e. the camera has moved
    noticeably since the last key-frame. The last frame is also kept so
    sequences never lose their endpoint.

    Raises :class:`KeyframeSelectionError` when a frame carries corrupt
    pixel data (empty or non-finite) — NaNs would silently zero every
    downstream similarity, so corrupt sessions must fail loudly enough
    for the pipeline to quarantine them.
    """
    config = config or CrowdMapConfig()
    if not frames:
        return []
    keyframes: List[KeyFrame] = []
    last_hog: Optional[np.ndarray] = None
    for i, frame in enumerate(frames):
        pixels = frame.pixels
        if pixels is None or pixels.size == 0:
            raise KeyframeSelectionError(
                f"session {session_id or '<unknown>'}: frame "
                f"{frame.frame_index} has no pixel data",
                session_id=session_id, frame_index=frame.frame_index,
            )
        if not np.all(np.isfinite(pixels)):
            raise KeyframeSelectionError(
                f"session {session_id or '<unknown>'}: frame "
                f"{frame.frame_index} has non-finite pixels (corrupt upload)",
                session_id=session_id, frame_index=frame.frame_index,
            )
        smoothed = gaussian_blur(to_grayscale(frame.pixels), config.hog_blur_sigma)
        hog = hog_descriptor(smoothed, cell_size=config.hog_cell_size)
        is_last = i == len(frames) - 1
        if last_hog is None:
            keep = True
        else:
            scc = hog_similarity(hog, last_hog)
            keep = scc < config.keyframe_ncc_threshold
        if keep or (is_last and len(keyframes) < 2):
            keyframes.append(
                KeyFrame(
                    frame=frame,
                    keyframe_id=f"{session_id}#{frame.frame_index}",
                    hog=hog,
                    _config=config,
                )
            )
            last_hog = hog
    return keyframes


def keyframe_reduction_ratio(
    n_frames: int, n_keyframes: int
) -> float:
    """Fraction of frames removed by selection (0 = kept all)."""
    if n_frames == 0:
        return 0.0
    return 1.0 - n_keyframes / n_frames
