"""Video key-frame selection (paper Section III.B.I).

Processing every frame with SURF was the paper's bottleneck, so frames are
first thinned: a HOG descriptor summarizes each frame's gradient structure,
consecutive frames are compared with a normalized cross-correlation score
``Scc``, and frames too similar to the last kept key-frame are dropped —
keeping only "frames with noticeable camera motion".

A :class:`KeyFrame` caches every signature the later comparison stages
need (color histogram, shape signature, wavelet signature, SURF features),
so each is computed exactly once per key-frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

import math

from repro.backend.batching import plan_batches
from repro.backend.cache import config_fingerprint, frame_digest, get_cache
from repro.core.config import CrowdMapConfig, planner_mode
from repro.geometry.primitives import angle_difference
from repro.vision.color_histogram import chromaticity_histogram
from repro.vision.filters import gaussian_blur_stack
from repro.vision.framestack import adopt_gray_stack, frame_stack
from repro.vision.hog import (
    hog_descriptor,
    hog_descriptor_stack,
    hog_similarity,
)
from repro.vision.image import to_grayscale_stack
from repro.vision.image import Frame
from repro.vision.shape_matching import shape_signature
from repro.vision.surf import SurfFeature, detect_and_describe, surf_detect_batch
from repro.vision.wavelet import WaveletSignature, wavelet_signature


class KeyframeSelectionError(ValueError):
    """A session's frames cannot yield key-frames (corrupt or empty pixels).

    Crowdsourced uploads arrive damaged — dropped chunks, codec bit-rot —
    and NaN pixels would otherwise flow silently into every downstream
    signature. Raising here gives the pipeline a clean per-session
    quarantine point instead of a poisoned reconstruction.
    """

    def __init__(self, message: str, session_id: str = "",
                 frame_index: Optional[int] = None):
        super().__init__(message)
        self.session_id = session_id
        self.frame_index = frame_index


@dataclass
class KeyFrame:
    """A selected key-frame with its cached comparison signatures."""

    frame: Frame
    keyframe_id: str
    hog: np.ndarray
    color: Optional[np.ndarray] = None
    shape: Optional[np.ndarray] = None
    wavelet: Optional[WaveletSignature] = None
    surf: Optional[List[SurfFeature]] = None
    _config: CrowdMapConfig = field(default_factory=CrowdMapConfig, repr=False)
    _surf_matrix: Optional[tuple] = field(default=None, repr=False)

    @property
    def timestamp(self) -> float:
        return self.frame.timestamp

    @property
    def heading(self) -> float:
        return self.frame.heading

    def ensure_signatures(self) -> None:
        """Compute the cheap S1 signatures if not already cached.

        Signatures are memoized per key-frame instance *and* in the
        content-addressed cache, so a frame whose pixels were already
        signed — in this run or (disk mode) an earlier one — pays only a
        digest.
        """
        if self.color is None or self.shape is None or self.wavelet is None:
            pixels = self.frame.pixels
            stack = frame_stack(self.frame)
            self.color, self.shape, self.wavelet = get_cache().get_or_compute(
                "s1_signatures",
                frame_digest(self.frame),
                lambda: (
                    # Illumination-invariant variant: uploads span day and
                    # night lighting, so the S1 color rung must not key on
                    # exposure.
                    chromaticity_histogram(pixels),
                    # Shape and wavelet read the frame stack's shared
                    # grayscale plane instead of reconverting.
                    shape_signature(pixels, gray=stack.gray),
                    wavelet_signature(pixels, gray=stack.gray),
                ),
            )

    def ensure_surf(self) -> List[SurfFeature]:
        """Compute (and cache) the frame's SURF features."""
        if self.surf is None:
            key = frame_digest(self.frame) + config_fingerprint(
                self._config,
                ("surf_response_threshold", "surf_max_features"),
            )
            self.surf = get_cache().get_or_compute(
                "surf",
                key,
                lambda: detect_and_describe(
                    self.frame.pixels,
                    threshold=self._config.surf_response_threshold,
                    max_features=self._config.surf_max_features,
                    stack=frame_stack(self.frame),
                ),
            )
        return self.surf

    def surf_matching_arrays(self) -> tuple:
        """``(descriptor_matrix, squared row norms)`` of the SURF features.

        A key-frame is matched against many partners; both halves of the
        pairwise-distance expansion that depend on only one side are
        memoized here per instance (computed by the exact expressions the
        matcher would use, so reuse is bit-invisible).
        """
        if self._surf_matrix is None:
            from repro.vision.matching import descriptor_norms
            from repro.vision.surf import descriptor_matrix
            matrix = descriptor_matrix(self.ensure_surf())
            self._surf_matrix = (matrix, descriptor_norms(matrix))
        return self._surf_matrix


#: Injected by ``repro.dataflow`` (which sits below this layer's backend
#: dependencies in the CM010 DAG, so it cannot be imported here): an
#: object with ``variant(shape, sigma) -> "" | ":fft"`` deciding which
#: blur implementation the size dispatcher would pick, and
#: ``blur(stack, sigma) -> ndarray`` running the FFT path. Consulted only
#: under ``CROWDMAP_PLANNER=aggressive``; the default mode always takes
#: the bit-reproducible direct path.
_blur_dispatcher = None


def set_blur_dispatcher(dispatcher) -> None:
    """Install the size dispatcher (called by ``repro/__init__`` wiring)."""
    global _blur_dispatcher
    _blur_dispatcher = dispatcher


def _blur_variant(config: CrowdMapConfig, shape) -> str:
    """Cache-key suffix naming the blur implementation for this shape.

    ``""`` is the direct separable path (the only one default mode ever
    uses); ``":fft"`` marks aggressive-mode FFT blurs. The suffix keys the
    per-frame ``hog`` cache per-implementation so FFT and direct outputs
    — equal to round-off, not bitwise — never share a cache slot.
    """
    if _blur_dispatcher is None or planner_mode() != "aggressive":
        return ""
    return _blur_dispatcher.variant(shape, config.hog_blur_sigma)


def _blur_stack(stack: np.ndarray, config: CrowdMapConfig, variant: str) -> np.ndarray:
    if variant == ":fft":
        return _blur_dispatcher.blur(stack, config.hog_blur_sigma)
    return gaussian_blur_stack(stack, config.hog_blur_sigma)


def _prescreen_energy(frame: Frame) -> np.ndarray:
    """4x-strided single-channel plane used by the aggressive pre-screen.

    Cheap by construction: a strided view (green channel for RGB — the
    luma-dominant one), no conversion, no copy until the subtraction.
    """
    pixels = frame.pixels
    if pixels.ndim == 3:
        return pixels[::4, ::4, 1]
    return pixels[::4, ::4]


def prescreen_survivors(
    frames: Sequence[Frame], config: CrowdMapConfig
) -> List[Frame]:
    """Thin near-duplicate frames before the HOG chain (aggressive only).

    Sequential scan mirroring the selection loop's shape: a frame
    survives when the mean absolute temporal gradient of its strided
    plane against the *last survivor* reaches
    ``config.keyframe_prescreen_threshold`` — i.e. the camera moved
    enough that the frame could plausibly become a key-frame — or when
    its device heading drifted ``config.keyframe_prescreen_heading``
    radians from the last survivor's (the coverage guard: spin
    sequences sweep the full circle, and panorama stitching needs the
    angular gaps between surviving frames bounded well below the FOV
    overlap requirement, whatever the pixel energy says). The first
    and last frames always survive (selection keeps its endpoints).

    This is the aggressive profile's approximation: a rejected frame
    skips the full gray→blur→HOG chain entirely, so selection sees a
    thinner sequence and its Scc decisions may differ from the default
    profile's. Accuracy is gated by the scorecard tolerance bands, not
    bit-identity. Callers must not invoke this in default mode.
    """
    threshold = config.keyframe_prescreen_threshold
    if threshold <= 0.0 or len(frames) <= 2:
        return list(frames)
    heading_cap = config.keyframe_prescreen_heading
    survivors = [frames[0]]
    last_plane = _prescreen_energy(frames[0])
    for frame in frames[1:-1]:
        plane = _prescreen_energy(frame)
        turned = heading_cap > 0.0 and abs(
            angle_difference(frame.heading, survivors[-1].heading)
        ) >= heading_cap
        if turned or plane.shape != last_plane.shape or (
            float(np.abs(plane - last_plane).mean()) >= threshold
        ):
            survivors.append(frame)
            last_plane = plane
    survivors.append(frames[-1])
    return survivors


def _frame_hog(frame: Frame, config: CrowdMapConfig) -> np.ndarray:
    """Blur + HOG for one frame, memoized by pixel content and HOG knobs.

    This runs for *every* frame of every session (it is what key-frame
    selection thins with), so on incremental re-runs the cache turns the
    dominant per-frame cost into a digest lookup.
    """
    variant = _blur_variant(config, frame.pixels.shape)
    key = frame_digest(frame) + config_fingerprint(
        config, ("hog_blur_sigma", "hog_cell_size")
    ) + variant

    def compute() -> np.ndarray:
        stack = frame_stack(frame)
        if variant:
            smoothed = _blur_dispatcher.blur(stack.gray, config.hog_blur_sigma)
        else:
            smoothed = stack.blurred(config.hog_blur_sigma)
        return hog_descriptor(smoothed, cell_size=config.hog_cell_size)

    return get_cache().get_or_compute("hog", key, compute)


def _frame_hogs(
    frames: Sequence[Frame], config: CrowdMapConfig
) -> List[np.ndarray]:
    """Blur + HOG for a whole frame sequence, cache-aware and batched.

    The config fingerprint is computed once for the sequence, every
    frame's digest is looked up individually (so cache hits, telemetry
    counts and stored values are exactly those of :func:`_frame_hog`),
    and only the *misses* are computed — in same-shape batches of
    ``config.kernel_batch_size`` frames through the stacked
    grayscale/blur/HOG kernels. The batch amortizes the blur's FFT-free
    separable convolution setup across frames while the size cap keeps
    the stacked working set cache-resident; each lane of the stacked
    chain is bit-identical to the per-frame chain, so cached values are
    indistinguishable from per-frame ones.
    """
    cache = get_cache()
    fingerprint = config_fingerprint(
        config, ("hog_blur_sigma", "hog_cell_size")
    )
    keys = [
        frame_digest(frame) + fingerprint
        + _blur_variant(config, frame.pixels.shape)
        for frame in frames
    ]
    hogs: List[Optional[np.ndarray]] = [None] * len(frames)
    misses: List[int] = []
    for i in range(len(frames)):
        hit, value = cache.lookup("hog", keys[i])
        if hit:
            hogs[i] = value
        else:
            misses.append(i)
    if not misses:
        return hogs
    batches = plan_batches(
        [frames[i].pixels.shape for i in misses],
        batch_size=config.kernel_batch_size,
    )
    for batch in batches:
        frame_indices = [misses[j] for j in batch.indices]
        stack = np.stack([frames[i].pixels for i in frame_indices])
        gray_stack = to_grayscale_stack(stack)
        # Seed each frame's grayscale cache from the batched conversion
        # (per-lane bit-identical to converting alone) so later stages —
        # S1 signatures, SURF, LSD — never reconvert the same pixels.
        adopt_gray_stack([frames[i] for i in frame_indices], gray_stack)
        smoothed = _blur_stack(
            gray_stack, config,
            _blur_variant(config, frames[frame_indices[0]].pixels.shape),
        )
        descriptors = hog_descriptor_stack(
            smoothed, cell_size=config.hog_cell_size
        )
        for lane, i in enumerate(frame_indices):
            hog = np.ascontiguousarray(descriptors[lane])
            hogs[i] = hog
            cache.store("hog", keys[i], hog)
    return hogs


def select_keyframes(
    frames: Sequence[Frame],
    config: Optional[CrowdMapConfig] = None,
    session_id: str = "",
) -> List[KeyFrame]:
    """Thin a frame sequence into key-frames by HOG cross-correlation.

    The first frame is always kept; each subsequent frame is kept when its
    HOG similarity ``Scc`` to the *last kept* key-frame falls below the
    ``keyframe_ncc_threshold`` (``h_g``) — i.e. the camera has moved
    noticeably since the last key-frame. The last frame is also kept so
    sequences never lose their endpoint.

    Raises :class:`KeyframeSelectionError` when a frame carries corrupt
    pixel data (empty or non-finite) — NaNs would silently zero every
    downstream similarity, so corrupt sessions must fail loudly enough
    for the pipeline to quarantine them.
    """
    config = config or CrowdMapConfig()
    if not frames:
        return []
    for frame in frames:
        pixels = frame.pixels
        if pixels is None or pixels.size == 0:
            raise KeyframeSelectionError(
                f"session {session_id or '<unknown>'}: frame "
                f"{frame.frame_index} has no pixel data",
                session_id=session_id, frame_index=frame.frame_index,
            )
        # min/max propagate NaN and +/-inf, so two scalar reductions
        # detect non-finite pixels without materializing the bool mask
        # np.isfinite(pixels) would allocate for every frame.
        if not (math.isfinite(float(pixels.min()))
                and math.isfinite(float(pixels.max()))):
            raise KeyframeSelectionError(
                f"session {session_id or '<unknown>'}: frame "
                f"{frame.frame_index} has non-finite pixels (corrupt upload)",
                session_id=session_id, frame_index=frame.frame_index,
            )
    # Aggressive profile only: thin near-duplicate frames before any
    # kernel runs on them. The default profile processes every frame
    # (bit-identical to the pre-planner pipeline).
    if planner_mode() == "aggressive":
        frames = prescreen_survivors(frames, config)
    # Every frame's HOG is needed (selection compares each against the
    # last kept key-frame), so compute the whole sequence in one batch.
    hogs = _frame_hogs(frames, config)
    keyframes: List[KeyFrame] = []
    last_hog: Optional[np.ndarray] = None
    for i, frame in enumerate(frames):
        hog = hogs[i]
        is_last = i == len(frames) - 1
        if last_hog is None:
            keep = True
        else:
            scc = hog_similarity(hog, last_hog)
            keep = scc < config.keyframe_ncc_threshold
        if keep or (is_last and len(keyframes) < 2):
            keyframes.append(
                KeyFrame(
                    frame=frame,
                    keyframe_id=f"{session_id}#{frame.frame_index}",
                    hog=hog,
                    _config=config,
                )
            )
            last_hog = hog
    return keyframes


def prefetch_surf(
    keyframes: Sequence[KeyFrame],
    config: Optional[CrowdMapConfig] = None,
) -> None:
    """Batch-compute SURF features for key-frames that lack them.

    :meth:`KeyFrame.ensure_surf` computes features one frame at a time on
    first comparison; this helper fills the same per-frame cache slots
    (identical keys, identical values — ``surf_detect_batch`` is
    bit-identical to ``detect_and_describe`` per frame) ahead of time, in
    same-shape batches that amortize detector dispatch overhead. Frames
    whose features are already memoized — on the instance or in the
    content-addressed cache — are skipped, so hit accounting matches the
    lazy path.
    """
    config = config or CrowdMapConfig()
    cache = get_cache()
    fingerprint = config_fingerprint(
        config, ("surf_response_threshold", "surf_max_features")
    )
    pending: List[KeyFrame] = []
    pending_keys: List[str] = []
    for kf in keyframes:
        if kf.surf is not None:
            continue
        key = frame_digest(kf.frame) + fingerprint
        hit, value = cache.lookup("surf", key)
        if hit:
            kf.surf = value
            continue
        pending.append(kf)
        pending_keys.append(key)
    if not pending:
        return
    batches = plan_batches(
        [kf.frame.pixels.shape for kf in pending],
        batch_size=config.kernel_batch_size,
    )
    for batch in batches:
        features = surf_detect_batch(
            [pending[j].frame.pixels for j in batch.indices],
            threshold=config.surf_response_threshold,
            max_features=config.surf_max_features,
            stacks=[frame_stack(pending[j].frame) for j in batch.indices],
        )
        for lane, j in enumerate(batch.indices):
            pending[j].surf = features[lane]
            cache.store("surf", pending_keys[j], features[lane])


def keyframe_reduction_ratio(
    n_frames: int, n_keyframes: int
) -> float:
    """Fraction of frames removed by selection (0 = kept all)."""
    if n_frames == 0:
        return 0.0
    return 1.0 - n_keyframes / n_frames
