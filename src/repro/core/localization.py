"""Indoor localization on a reconstructed floor plan.

The paper motivates floor plans by what they enable: "It plays an
essential role in many indoor mobile applications, such as localization
and navigation." This module closes that loop — the reconstruction's own
key-frame corpus becomes a visual localization database:

- every anchored key-frame from the SWS corpus is indexed with its
  position in the reconstructed frame;
- a query (one frame + device heading) is matched against the index with
  the same hierarchical comparator the pipeline uses;
- the location estimate is the S2-weighted average of the top matches'
  positions, snapped onto the reconstructed skeleton.

Accuracy inherits the map's quality, which is exactly the paper's pitch:
better maps -> better downstream localization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyFrame, select_keyframes
from repro.core.pipeline import ReconstructionResult
from repro.core.skeleton import SkeletonResult
from repro.geometry.primitives import Point
from repro.vision.image import Frame


@dataclass(frozen=True)
class LocalizationMatch:
    """One database key-frame that matched the query."""

    keyframe_id: str
    position: Point
    s2: float


@dataclass(frozen=True)
class LocalizationEstimate:
    """The localizer's answer for one query frame."""

    position: Point
    confidence: float  # sum of matched S2 mass
    matches: Tuple[LocalizationMatch, ...]
    snapped: bool  # True when the estimate was moved onto the skeleton

    @property
    def matched(self) -> bool:
        return bool(self.matches)


class VisualLocalizer:
    """Localizes query frames against a reconstruction's key-frame corpus."""

    def __init__(
        self,
        result: ReconstructionResult,
        config: Optional[CrowdMapConfig] = None,
        top_k: int = 5,
    ):
        self.config = config or CrowdMapConfig()
        self.comparator = KeyframeComparator(self.config)
        self.top_k = top_k
        self._skeleton: SkeletonResult = result.skeleton
        self._database: List[Tuple[KeyFrame, Point]] = []
        self._index_corpus(result)

    def _index_corpus(self, result: ReconstructionResult) -> None:
        """Attach each corpus key-frame to its registered position."""
        for anchored, trajectory in zip(
            result.anchored, result.aggregation.trajectories
        ):
            if not trajectory.points:
                continue
            for kf in anchored.keyframes:
                idx = trajectory.nearest_index(kf.timestamp)
                p = trajectory[idx]
                self._database.append((kf, Point(p.x, p.y)))

    def __len__(self) -> int:
        return len(self._database)

    def _snap_to_skeleton(self, p: Point) -> Tuple[Point, bool]:
        """Move an estimate onto the nearest reconstructed skeleton cell."""
        skeleton = self._skeleton.skeleton
        rows, cols = np.nonzero(skeleton)
        if rows.size == 0:
            return p, False
        bounds = self._skeleton.bounds
        cell = self._skeleton.cell_size
        xs = bounds.min_x + (cols + 0.5) * cell
        ys = bounds.min_y + (rows + 0.5) * cell
        d = np.hypot(xs - p.x, ys - p.y)
        k = int(np.argmin(d))
        if d[k] <= cell:  # already on (or adjacent to) the skeleton
            return p, False
        return Point(float(xs[k]), float(ys[k])), True

    def localize(self, query: Frame) -> LocalizationEstimate:
        """Estimate where ``query`` was captured.

        The query is wrapped as a key-frame, compared against the corpus
        through the hierarchical comparator (heading gate -> S1 -> SURF),
        and the top-``k`` matches vote with their S2 scores.
        """
        [query_kf] = select_keyframes([query], self.config, session_id="query")
        matches: List[LocalizationMatch] = []
        for kf, position in self._database:
            outcome = self.comparator.compare(query_kf, kf)
            if outcome.matched:
                matches.append(
                    LocalizationMatch(
                        keyframe_id=kf.keyframe_id,
                        position=position,
                        s2=outcome.s2,
                    )
                )
        matches.sort(key=lambda m: -m.s2)
        top = matches[: self.top_k]
        if not top:
            return LocalizationEstimate(
                position=Point(float("nan"), float("nan")),
                confidence=0.0,
                matches=(),
                snapped=False,
            )
        weight = sum(m.s2 for m in top)
        x = sum(m.position.x * m.s2 for m in top) / weight
        y = sum(m.position.y * m.s2 for m in top) / weight
        snapped_point, snapped = self._snap_to_skeleton(Point(x, y))
        return LocalizationEstimate(
            position=snapped_point,
            confidence=weight,
            matches=tuple(top),
            snapped=snapped,
        )

    def localize_sequence(
        self, frames: Sequence[Frame], smoothing: float = 0.5
    ) -> List[LocalizationEstimate]:
        """Localize a frame sequence with exponential position smoothing.

        Walking queries arrive as short clips; smoothing each estimate
        toward its predecessor suppresses single-frame mismatches (the
        sequential idea the paper applies to aggregation, reused here).
        """
        estimates: List[LocalizationEstimate] = []
        prev: Optional[Point] = None
        for frame in frames:
            estimate = self.localize(frame)
            if estimate.matched and prev is not None:
                blended = Point(
                    smoothing * prev.x + (1 - smoothing) * estimate.position.x,
                    smoothing * prev.y + (1 - smoothing) * estimate.position.y,
                )
                estimate = LocalizationEstimate(
                    position=blended,
                    confidence=estimate.confidence,
                    matches=estimate.matches,
                    snapped=estimate.snapped,
                )
            if estimate.matched:
                prev = estimate.position
            estimates.append(estimate)
        return estimates
