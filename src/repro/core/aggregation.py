"""Sequence-based user-trajectory aggregation (paper Section III.B.I).

Video key-frames act as "anchor points" between trajectories: when several
key-frames of trajectory A match key-frames of trajectory B *in temporal
order*, the two walks very likely share a path. The paper captures this
with the longest common subsequence over trajectory points,

    L(Ta_i, Tb_j) = 1 + L(Ta_{i-1}, Tb_{j-1})   if d(ta_i, tb_j) <= eps
                                                 and |i - j| < delta,

scored as ``S3 = max_{f in F} L(Ta, f(Tb)) / min(i, j)`` (Eq. 2) where F
is a set of candidate transforms. We generate F from the matched anchors
themselves: each consistent anchor set proposes the rigid transform that
registers B's anchor positions onto A's (plus single-anchor translation
fallbacks), and S3 is maximized over the proposals. Pairs with
``S3 > h_l`` merge; a spanning tree over merges places every trajectory in
one common frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.workers import map_parallel
from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyFrame
from repro.geometry.primitives import Point, Transform2D, wrap_angle
from repro.sensors.trajectory import Trajectory


@dataclass
class AnchoredTrajectory:
    """A device trajectory plus its selected key-frames.

    ``anchor_index(k)`` gives the resampled-trajectory point index nearest
    key-frame ``k``'s capture time.
    """

    trajectory: Trajectory
    keyframes: List[KeyFrame]
    session_id: str

    _resampled: Optional[Trajectory] = field(default=None, repr=False)

    def resampled(self, interval: float) -> Trajectory:
        if self._resampled is None:
            self._resampled = self.trajectory.resampled(interval)
        return self._resampled

    def anchor_point(self, keyframe: KeyFrame, interval: float) -> np.ndarray:
        traj = self.resampled(interval)
        idx = traj.nearest_index(keyframe.timestamp)
        p = traj[idx]
        return np.array([p.x, p.y])


def lcss_similarity(
    xy_a: np.ndarray,
    xy_b: np.ndarray,
    epsilon: float,
    delta: int,
) -> Tuple[int, float]:
    """Banded LCSS length and normalized score between two point arrays.

    Implements the paper's recursion directly with a dynamic program
    restricted to the band ``|i - j| < delta``. Returns ``(L, S3)`` with
    ``S3 = L / min(len_a, len_b)``.
    """
    n, m = len(xy_a), len(xy_b)
    if n == 0 or m == 0:
        return 0, 0.0
    # dp[i][j] over 1-based indices; band keeps it near-linear.
    prev = np.zeros(m + 1, dtype=np.int32)
    curr = np.zeros(m + 1, dtype=np.int32)
    eps_sq = epsilon * epsilon
    for i in range(1, n + 1):
        curr[0] = 0
        j_lo = max(1, i - delta + 1)
        j_hi = min(m, i + delta - 1)
        # Outside the band, carry the best-so-far from the left edge.
        curr[1:j_lo] = prev[1:j_lo]
        ax, ay = xy_a[i - 1]
        for j in range(j_lo, j_hi + 1):
            dx = ax - xy_b[j - 1][0]
            dy = ay - xy_b[j - 1][1]
            if dx * dx + dy * dy <= eps_sq:
                curr[j] = 1 + prev[j - 1]
            else:
                curr[j] = max(curr[j - 1], prev[j])
        if j_hi < m:
            curr[j_hi + 1 :] = curr[j_hi]
        prev, curr = curr, prev
    length = int(prev[m])
    return length, length / min(n, m)


def fit_rigid_transform(src: np.ndarray, dst: np.ndarray) -> Transform2D:
    """Least-squares rigid transform mapping ``src`` points onto ``dst``.

    2D Kabsch: optimal rotation from the cross-covariance, then the
    translation aligning the centroids.
    """
    if len(src) != len(dst) or len(src) == 0:
        raise ValueError("need equally many source and destination points")
    cs = src.mean(axis=0)
    cd = dst.mean(axis=0)
    s = src - cs
    d = dst - cd
    cov = s.T @ d
    theta = math.atan2(cov[0, 1] - cov[1, 0], cov[0, 0] + cov[1, 1])
    c, si = math.cos(theta), math.sin(theta)
    rot = np.array([[c, -si], [si, c]])
    t = cd - rot @ cs
    return Transform2D(theta=theta, tx=float(t[0]), ty=float(t[1]))


def _longest_increasing_pairs(
    pairs: Sequence[Tuple[int, int, float]],
) -> List[Tuple[int, int, float]]:
    """Largest subset of (i, j) match pairs increasing in both indices.

    This is the "sequence-based" consistency requirement: anchors between
    two walks must appear in the same temporal order in both.
    """
    ordered = sorted(pairs, key=lambda p: (p[0], p[1]))
    best_chain: List[Tuple[int, int, float]] = []
    chains: List[List[Tuple[int, int, float]]] = []
    for pair in ordered:
        extendable = [
            chain for chain in chains
            if chain[-1][0] < pair[0] and chain[-1][1] < pair[1]
        ]
        if extendable:
            base = max(extendable, key=len)
            chain = base + [pair]
        else:
            chain = [pair]
        chains.append(chain)
        if len(chain) > len(best_chain):
            best_chain = chain
    return best_chain


@dataclass(frozen=True)
class MergeCandidate:
    """A scored, transform-carrying merge decision for a trajectory pair."""

    index_a: int
    index_b: int
    s3: float
    transform: Transform2D  # maps B's frame into A's frame
    n_anchor_matches: int
    mergeable: bool
    #: Sequence-consistent matched key-frame index pairs (into the two
    #: sessions' keyframe lists); used by drift calibration.
    anchor_pairs: Tuple[Tuple[int, int], ...] = ()


@dataclass
class AggregationResult:
    """Aggregated trajectories in one common frame."""

    trajectories: List[Trajectory]
    transforms: List[Transform2D]
    candidates: List[MergeCandidate]
    components: List[List[int]]

    def merged_pairs(self) -> List[Tuple[int, int]]:
        return [(c.index_a, c.index_b) for c in self.candidates if c.mergeable]


def calibrate_drift(
    anchored: Sequence["AnchoredTrajectory"],
    result: "AggregationResult",
    iterations: int = 2,
) -> List[Trajectory]:
    """Anchor-based drift calibration of the registered trajectories.

    Paper Section V.D: "We process multiple continuous key-frames to
    calibrate the drift error residing in the trajectories, and then
    aggregate these trajectories." After rigid registration, every matched
    key-frame pair asserts that two walks saw the same place at their
    anchor instants; the residual between the corresponding trajectory
    points is dead-reckoning drift. Each trajectory is warped by a
    time-interpolated offset that moves its anchor points halfway toward
    the pairwise consensus, repeated for a couple of smoothing iterations.

    Returns the calibrated trajectories (same order as ``result``).
    """
    trajectories = [
        Trajectory(
            points=list(t.points),
            user_id=t.user_id,
            trajectory_id=t.trajectory_id,
            keyframe_indices=dict(t.keyframe_indices),
        )
        for t in result.trajectories
    ]
    merged = [c for c in result.candidates if c.mergeable and c.anchor_pairs]
    if not merged:
        return trajectories

    for _ in range(max(1, iterations)):
        corrections: Dict[int, List[Tuple[float, float, float]]] = {
            i: [] for i in range(len(trajectories))
        }
        for cand in merged:
            ia, ib = cand.index_a, cand.index_b
            traj_a, traj_b = trajectories[ia], trajectories[ib]
            if not traj_a.points or not traj_b.points:
                continue
            for ka, kb in cand.anchor_pairs:
                kf_a = anchored[ia].keyframes[ka]
                kf_b = anchored[ib].keyframes[kb]
                pa = traj_a[traj_a.nearest_index(kf_a.timestamp)]
                pb = traj_b[traj_b.nearest_index(kf_b.timestamp)]
                mid_x = (pa.x + pb.x) / 2.0
                mid_y = (pa.y + pb.y) / 2.0
                corrections[ia].append(
                    (kf_a.timestamp, (mid_x - pa.x) / 2.0, (mid_y - pa.y) / 2.0)
                )
                corrections[ib].append(
                    (kf_b.timestamp, (mid_x - pb.x) / 2.0, (mid_y - pb.y) / 2.0)
                )
        for i, corr in corrections.items():
            if not corr:
                continue
            corr.sort()
            times = np.array([c[0] for c in corr])
            dxs = np.array([c[1] for c in corr])
            dys = np.array([c[2] for c in corr])
            traj = trajectories[i]
            pt_times = traj.times()
            offset_x = np.interp(pt_times, times, dxs)
            offset_y = np.interp(pt_times, times, dys)
            from repro.sensors.trajectory import TrajectoryPoint

            traj.points = [
                TrajectoryPoint(p.x + float(ox), p.y + float(oy), p.t, p.heading)
                for p, ox, oy in zip(traj.points, offset_x, offset_y)
            ]
    return trajectories


class SequenceAggregator:
    """Aggregates anchored trajectories via key-frame anchors + LCSS."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        comparator: Optional[KeyframeComparator] = None,
    ):
        self.config = config or CrowdMapConfig()
        self.comparator = comparator or KeyframeComparator(self.config)

    # ------------------------------------------------------------------
    # Pairwise machinery
    # ------------------------------------------------------------------

    def anchor_matches(
        self, a: AnchoredTrajectory, b: AnchoredTrajectory
    ) -> List[Tuple[int, int, float]]:
        """Ordered key-frame matches between two sessions.

        Returns sequence-consistent (index into a.keyframes, index into
        b.keyframes, S2 score) triples.
        """
        raw: List[Tuple[int, int, float]] = []
        for i, kf_a in enumerate(a.keyframes):
            for j, kf_b in enumerate(b.keyframes):
                result = self.comparator.compare(kf_a, kf_b)
                if result.matched:
                    raw.append((i, j, result.s2))
        return _longest_increasing_pairs(raw)

    def _proposals(
        self,
        a: AnchoredTrajectory,
        b: AnchoredTrajectory,
        matches: Sequence[Tuple[int, int, float]],
    ) -> List[Transform2D]:
        """Candidate transforms of B's frame into A's (the paper's F)."""
        interval = self.config.resample_interval
        src = np.array([b.anchor_point(b.keyframes[j], interval) for _, j, _ in matches])
        dst = np.array([a.anchor_point(a.keyframes[i], interval) for i, _, _ in matches])
        proposals: List[Transform2D] = [Transform2D.identity()]
        if len(matches) >= 2:
            proposals.append(fit_rigid_transform(src, dst))
        # Heading-aligned single-anchor translations, strongest first.
        ranked = sorted(enumerate(matches), key=lambda kv: -kv[1][2])
        for k, (i, j, _) in ranked[: self.config.max_anchor_proposals]:
            rotation = wrap_angle(
                a.keyframes[i].heading - b.keyframes[j].heading
            )
            c, s = math.cos(rotation), math.sin(rotation)
            rotated = np.array([c * src[k][0] - s * src[k][1],
                                s * src[k][0] + c * src[k][1]])
            t = dst[k] - rotated
            proposals.append(Transform2D(rotation, float(t[0]), float(t[1])))
        return proposals[: self.config.max_anchor_proposals + 2]

    def score_pair(
        self, a: AnchoredTrajectory, b: AnchoredTrajectory,
        index_a: int = 0, index_b: int = 1,
    ) -> MergeCandidate:
        """Full pairwise decision: anchors -> transforms -> LCSS -> S3."""
        cfg = self.config
        matches = self.anchor_matches(a, b)
        if len(matches) < cfg.min_anchor_matches:
            return MergeCandidate(
                index_a=index_a, index_b=index_b, s3=0.0,
                transform=Transform2D.identity(),
                n_anchor_matches=len(matches), mergeable=False,
                anchor_pairs=tuple((i, j) for i, j, _ in matches),
            )
        xy_a = a.resampled(cfg.resample_interval).as_array()
        xy_b = b.resampled(cfg.resample_interval).as_array()
        origin_b = (
            Point(b.trajectory.points[0].x, b.trajectory.points[0].y)
            if b.trajectory.points else Point(0.0, 0.0)
        )
        best_s3 = -1.0
        best_transform = Transform2D.identity()
        for transform in self._proposals(a, b, matches):
            # Geo-prior gate: both sessions carry a coarse absolute anchor
            # (Task-1), so a registration that teleports B further than the
            # combined origin-noise + drift budget cannot be right — it is
            # the signature of the parallel-corridor ambiguity.
            displacement = transform.apply(origin_b).distance_to(origin_b)
            if displacement > cfg.max_geo_displacement:
                continue
            moved = transform.apply_array(xy_b)
            _, s3 = lcss_similarity(xy_a, moved, cfg.lcss_epsilon, cfg.lcss_delta)
            if s3 > best_s3:
                best_s3 = s3
                best_transform = transform
        best_s3 = max(best_s3, 0.0)
        return MergeCandidate(
            index_a=index_a,
            index_b=index_b,
            s3=best_s3,
            transform=best_transform,
            n_anchor_matches=len(matches),
            mergeable=best_s3 > cfg.s3_threshold,
            anchor_pairs=tuple((i, j) for i, j, _ in matches),
        )

    # ------------------------------------------------------------------
    # Whole-crowd aggregation
    # ------------------------------------------------------------------

    def aggregate(
        self, anchored: Sequence[AnchoredTrajectory]
    ) -> AggregationResult:
        """Register all trajectories into one common frame.

        Pairwise merge candidates are scored (in parallel), mergeable pairs
        form a graph, and a BFS spanning tree of each connected component
        composes transforms so every trajectory lands in the frame of its
        component's root. Components never linked by anchors keep their own
        (geo-referenced) frame — identity transform.
        """
        n = len(anchored)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        candidates = map_parallel(
            lambda ij: self.score_pair(
                anchored[ij[0]], anchored[ij[1]], ij[0], ij[1]
            ),
            pairs,
            max_workers=self.config.n_workers,
        )
        return register_candidates(anchored, list(candidates))


def register_candidates(
    anchored: Sequence[AnchoredTrajectory],
    candidates: List[MergeCandidate],
) -> AggregationResult:
    """Build the common frame from already-scored merge candidates.

    Shared by batch aggregation and the incremental pipeline (which scores
    only the new session's pairs per update and re-registers from cache).
    """
    n = len(anchored)
    adjacency: Dict[int, List[Tuple[int, Transform2D]]] = {
        i: [] for i in range(n)
    }
    for cand in candidates:
        if not cand.mergeable:
            continue
        # transform maps B into A's frame.
        adjacency[cand.index_a].append((cand.index_b, cand.transform))
        adjacency[cand.index_b].append(
            (cand.index_a, cand.transform.inverse())
        )

    transforms: List[Optional[Transform2D]] = [None] * n
    components: List[List[int]] = []
    for root in range(n):
        if transforms[root] is not None:
            continue
        component = [root]
        transforms[root] = Transform2D.identity()
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for neighbour, edge in adjacency[node]:
                if transforms[neighbour] is None:
                    # node's frame -> root's frame, composed with
                    # neighbour -> node.
                    transforms[neighbour] = transforms[node].compose(edge)
                    component.append(neighbour)
                    frontier.append(neighbour)
        components.append(sorted(component))

    # Geo-prior correction: spanning-tree registration leaves every
    # component in its *root's* frame, inheriting that single session's
    # origin error. Each member's own dead-reckoning origin is an
    # unbiased geo-referenced prior (Task-1 annotation), so shifting
    # the whole component by the mean residual against those priors
    # shrinks the component's absolute offset by sqrt(#members).
    for component in components:
        dx_sum = dy_sum = 0.0
        count = 0
        for i in component:
            if not anchored[i].trajectory.points:
                continue
            origin = anchored[i].trajectory.points[0]
            t = transforms[i] or Transform2D.identity()
            moved_origin = t.apply(Point(origin.x, origin.y))
            dx_sum += origin.x - moved_origin.x
            dy_sum += origin.y - moved_origin.y
            count += 1
        if count == 0:
            continue
        shift = Transform2D(0.0, dx_sum / count, dy_sum / count)
        for i in component:
            base = transforms[i] or Transform2D.identity()
            transforms[i] = shift.compose(base)

    moved = []
    for i, anc in enumerate(anchored):
        t = transforms[i] or Transform2D.identity()
        moved.append(anc.trajectory.transformed(t.theta, t.tx, t.ty))
    return AggregationResult(
        trajectories=moved,
        transforms=[t or Transform2D.identity() for t in transforms],
        candidates=list(candidates),
        components=components,
    )
