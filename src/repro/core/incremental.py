"""Incremental reconstruction: sessions processed as they arrive.

The paper's backend is a streaming system — uploads land continuously and
an APScheduler-driven cascade refreshes the floor plan. Batch
:class:`~repro.core.pipeline.CrowdMapPipeline` recomputes everything; this
module maintains the reconstruction *incrementally*:

- a new SWS session is anchored once and scored only against the existing
  sessions (N new pairs instead of N^2 total), with all previous pair
  scores reused from cache;
- a new SRS session only rebuilds the room group (cell) it lands in;
- :meth:`IncrementalCrowdMap.snapshot` re-registers the merge graph from
  the cached candidates and produces the current floor plan on demand.

This is what makes the system "readily deployable at a large scale": the
marginal cost of an upload stays linear in the corpus size.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.backend.workers import map_parallel
from repro.core.aggregation import (
    AnchoredTrajectory,
    MergeCandidate,
    SequenceAggregator,
    calibrate_drift,
    register_candidates,
)
from repro.core.config import CrowdMapConfig
from repro.core.floorplan import FloorPlanAssembler, FloorPlanResult
from repro.core.keyframes import select_keyframes
from repro.core.panorama import PanoramaBuilder, PanoramaCoverageError, RoomPanorama
from repro.core.pipeline import ReconstructionResult, _trajectory_bounds
from repro.core.room_layout import RoomLayout, RoomLayoutEstimator
from repro.core.skeleton import reconstruct_skeleton
from repro.geometry.primitives import Point


def _score_pair_job(
    aggregator: SequenceAggregator,
    newcomer: AnchoredTrajectory,
    new_index: int,
    indexed: Tuple[int, AnchoredTrajectory],
) -> MergeCandidate:
    """Score one (existing, newcomer) pair.

    Module-level (bound via :func:`functools.partial`) so the job pickles
    under the process worker backend — a closure or lambda would not.
    """
    i, anchored = indexed
    return aggregator.score_pair(anchored, newcomer, i, new_index)


@dataclass
class _RoomCell:
    """State of one SRS cell: its sessions and current best layout."""

    sessions: List = field(default_factory=list)
    panorama: Optional[RoomPanorama] = None
    layout: Optional[RoomLayout] = None


class IncrementalCrowdMap:
    """Maintains a CrowdMap reconstruction under a stream of uploads."""

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()
        self.aggregator = SequenceAggregator(self.config)
        self.panorama_builder = PanoramaBuilder(self.config)
        self.layout_estimator = RoomLayoutEstimator(self.config)
        self.assembler = FloorPlanAssembler(self.config)
        self._anchored: List[AnchoredTrajectory] = []
        self._candidates: Dict[Tuple[int, int], MergeCandidate] = {}
        self._cells: Dict[Tuple[int, int], _RoomCell] = {}
        self.n_pair_scores = 0  # instrumentation: total pairwise work done

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def n_sws(self) -> int:
        return len(self._anchored)

    @property
    def n_rooms(self) -> int:
        return sum(1 for cell in self._cells.values() if cell.layout is not None)

    def add_session(self, session) -> None:
        """Ingest one uploaded session (SWS or SRS)."""
        if session.task == "SWS":
            self._add_sws(session)
        elif session.task == "SRS":
            self._add_srs(session)
        # Other tasks (e.g. STAIRS) carry no floor-plan content here.

    def _add_sws(self, session) -> None:
        keyframes = select_keyframes(
            session.frames, self.config, session_id=session.session_id
        )
        newcomer = AnchoredTrajectory(
            trajectory=session.device_trajectory,
            keyframes=keyframes,
            session_id=session.session_id,
        )
        new_index = len(self._anchored)
        self._anchored.append(newcomer)
        # Score only the new session against the existing corpus.
        pairs = list(enumerate(self._anchored[:new_index]))
        scored = map_parallel(
            partial(_score_pair_job, self.aggregator, newcomer, new_index),
            pairs,
            max_workers=self.config.n_workers,
            backend=self.config.worker_backend,
        )
        for candidate in scored:
            self._candidates[(candidate.index_a, candidate.index_b)] = candidate
        self.n_pair_scores += len(pairs)

    def _cell_of(self, session) -> Tuple[int, int]:
        traj = session.device_trajectory
        if len(traj) == 0:
            return (0, 0)
        x, y = traj.as_array().mean(axis=0)
        return (int(x // 2.5), int(y // 2.5))

    def _add_srs(self, session) -> None:
        key = self._cell_of(session)
        cell = self._cells.setdefault(key, _RoomCell())
        cell.sessions.append(session)
        # Rebuild only this cell: fit the new session's spin and keep the
        # most consistent layout seen for the cell so far.
        keyframes = select_keyframes(
            session.frames, self.config, session_id=session.session_id
        )
        traj = session.device_trajectory
        if len(traj):
            mean_x, mean_y = traj.as_array().mean(axis=0)
            capture = Point(float(mean_x), float(mean_y))
        else:
            capture = Point(0.0, 0.0)
        hints = Counter(s.room_name for s in cell.sessions if s.room_name)
        room_hint = hints.most_common(1)[0][0] if hints else None
        try:
            pano = self.panorama_builder.build(
                keyframes, capture_position=capture, room_hint=room_hint
            )
        except PanoramaCoverageError:
            return
        layout = self.layout_estimator.estimate(pano)
        if cell.layout is None or layout.consistency > cell.layout.consistency:
            cell.panorama = pano
            cell.layout = layout

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> Optional[ReconstructionResult]:
        """The current reconstruction, registered from cached pair scores.

        Returns None until at least one SWS session has arrived.
        """
        if not self._anchored:
            return None
        candidates = list(self._candidates.values())
        aggregation = register_candidates(self._anchored, candidates)
        if self.config.drift_calibration_iterations > 0:
            trajectories = calibrate_drift(
                self._anchored, aggregation,
                iterations=self.config.drift_calibration_iterations,
            )
        else:
            trajectories = aggregation.trajectories
        bounds = _trajectory_bounds(aggregation, margin=2.0)
        skeleton = reconstruct_skeleton(trajectories, bounds, self.config)

        panoramas = [c.panorama for c in self._cells.values() if c.panorama]
        layouts = [c.layout for c in self._cells.values() if c.layout]
        floorplan: FloorPlanResult = self.assembler.arrange(
            skeleton, layouts, names=[p.room_hint for p in panoramas]
        )
        return ReconstructionResult(
            aggregation=aggregation,
            skeleton=skeleton,
            panoramas=panoramas,
            layouts=layouts,
            floorplan=floorplan,
            timings={},
            anchored=list(self._anchored),
        )
