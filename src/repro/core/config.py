"""Pipeline configuration: every threshold the paper names, in one place.

The paper parameterizes its stages with named thresholds (``h_g``, ``h_s``,
``h_d``, ``h_f``, ``h_l``, ``epsilon``, ``delta``, ``h_alpha``). Defaults
below are calibrated for the synthetic substrate; each field documents
which paper stage it controls so ablations can sweep them meaningfully.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Tuple

#: Recognized ``CROWDMAP_PLANNER`` values. ``default`` runs the dataflow
#: planner in its bit-identical mode; ``aggressive`` additionally allows
#: size-dispatched (FFT-vs-direct) kernels, which match direct values to
#: round-off but not bit for bit; ``legacy``/``off`` run the original
#: fixed cascade.
PLANNER_MODES = ("default", "aggressive", "legacy", "off")


def planner_mode() -> str:
    """The planner mode selected by the ``CROWDMAP_PLANNER`` env switch."""
    mode = os.environ.get("CROWDMAP_PLANNER", "default").strip().lower()
    mode = mode or "default"
    if mode not in PLANNER_MODES:
        raise ValueError(
            f"CROWDMAP_PLANNER must be one of {PLANNER_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class CrowdMapConfig:
    """All tunables of the CrowdMap reconstruction pipeline."""

    # ---- key-frame selection (Section III.B.I) -----------------------
    #: ``h_g``: a frame becomes a key-frame when its HOG cross-correlation
    #: with the previous key-frame drops below this (noticeable motion).
    keyframe_ncc_threshold: float = 0.63
    #: HOG cell size used for the selection descriptor.
    hog_cell_size: int = 16
    #: Gaussian blur applied before the selection HOG, suppressing sensor
    #: noise so Scc reflects camera motion rather than shot noise.
    hog_blur_sigma: float = 2.0
    #: Aggressive-profile key-frame pre-screen: frames whose strided
    #: temporal gradient energy against the last surviving frame stays
    #: below this are dropped *before* the gray→blur→HOG chain runs on
    #: them. Consulted only under ``CROWDMAP_PLANNER=aggressive``; the
    #: default (bit-reproducible) profile always processes every frame.
    #: Calibrated on the bench substrate, where adjacent-frame energies
    #: have median ~0.075: together with the heading guard below, 0.11
    #: thins ~69% of frames while the full gated accuracy grid stays
    #: inside its tolerance bands (0.12 drops Lab2's hallway F below
    #: its band — walk thinning starves the LCSS anchor matches).
    keyframe_prescreen_threshold: float = 0.11
    #: Pre-screen coverage guard: a frame whose device heading moved at
    #: least this far (radians) since the last surviving frame always
    #: survives, whatever its pixel energy says. Spins rotate through
    #: the full circle, so this bounds the angular gap the pre-screen
    #: can open in a panorama sequence far below the stitching overlap
    #: requirement; walks hold their heading and are thinned by pixel
    #: energy alone. Aggressive profile only, like the threshold above.
    keyframe_prescreen_heading: float = 0.15

    # ---- hierarchical key-frame comparison ---------------------------
    #: Weights of the cheap S1 combination: (color, shape, wavelet).
    s1_weights: Tuple[float, float, float] = (0.4, 0.3, 0.3)
    #: ``h_s``: S1 below this rejects the pair before SURF runs.
    s1_threshold: float = 0.5
    #: ``h_d``: maximum descriptor distance for a good SURF match.
    surf_distance_threshold: float = 0.25
    #: ``h_f``: S2 (Eq. 1) above this declares the key-frames identical.
    s2_threshold: float = 0.13
    #: Maximum device-heading difference for two key-frames to be
    #: comparable at all (the inertial gate; radians).
    max_heading_difference: float = math.radians(35.0)
    #: SURF detector threshold and feature cap.
    surf_response_threshold: float = 0.0001
    surf_max_features: int = 200

    # ---- sequence-based aggregation (LCSS) ---------------------------
    #: ``epsilon``: point distance threshold inside the LCSS recursion, m.
    lcss_epsilon: float = 1.5
    #: ``delta``: maximum index offset |i - j| inside the LCSS recursion.
    lcss_delta: int = 12
    #: ``h_l``: S3 (Eq. 2) above this lets two trajectories merge.
    s3_threshold: float = 0.45
    #: Trajectories are resampled to this period before LCSS, seconds.
    resample_interval: float = 1.0
    #: Number of anchor-proposed transforms to try per trajectory pair.
    max_anchor_proposals: int = 6
    #: Minimum sequence-consistent anchor matches for a pair to be
    #: considered at all (the "multiple key-frames" requirement).
    min_anchor_matches: int = 2
    #: Anchor-based drift calibration iterations applied to the merged
    #: trajectories (0 disables; see calibrate_drift).
    drift_calibration_iterations: int = 2
    #: Geo-prior gate: a merge transform that would displace the other
    #: trajectory's geo-referenced origin by more than this many metres is
    #: implausible (Task-1 gives every session a coarse absolute anchor)
    #: and is rejected. Guards against the parallel-corridor ambiguity.
    max_geo_displacement: float = 4.0

    # ---- floor path skeleton (Section III.B.II) -----------------------
    #: Occupancy-grid cell size, metres.
    grid_cell_size: float = 0.5
    #: ``h_alpha``: alpha parameter of the boundary alpha shape (1/m).
    alpha: float = 0.8
    #: Radius (in cells) of the closing operation that repairs
    #: unconnected paths during boundary normalization.
    repair_radius: int = 1
    #: Half-width (m) of the occupancy splat around each trajectory point,
    #: approximating the walker's body/corridor occupancy.
    trajectory_splat_radius: float = 1.0
    #: Binarization guardrails: the Otsu threshold is capped at this
    #: quantile of the occupied-cell distribution (so a degenerate split
    #: cannot discard the corridor mass) and floored at ``min_visits``
    #: trajectory passes (so lone drift tails are always dropped).
    binarize_cap_quantile: float = 0.25
    min_visits: int = 2

    # ---- room layout (Section III.C) ----------------------------------
    #: Panorama canvas width in columns (maps to 360 degrees).
    panorama_width: int = 720
    #: Candidate room models sampled per panorama (paper uses 20,000).
    layout_samples: int = 2000
    #: Camera height used to convert boundary elevation to distance, m.
    camera_height: float = 1.5
    #: Minimum angular overlap between adjacent panorama key-frames,
    #: as a fraction of the FOV (paper Fig. 4's Overlap criterion).
    panorama_min_overlap: float = 0.1
    #: Maximum tolerated gap fraction of panorama columns.
    panorama_max_gap: float = 0.08

    # ---- floor plan assembly (Section III.D) ---------------------------
    #: Spring constant pulling each room toward its anchored position.
    force_attract: float = 0.35
    #: Repulsion constant pushing overlapping rooms apart.
    force_repulse: float = 2.5
    #: Iterations of the force-directed relaxation.
    force_iterations: int = 120
    #: Convergence threshold on the maximum room displacement per step, m.
    force_tolerance: float = 1e-3

    # ---- fault tolerance ----------------------------------------------
    #: What the pipeline does when one session or panorama group fails:
    #: "quarantine" records a StageFailure and keeps reconstructing from
    #: the healthy remainder (crowdsourced inputs are unreliable by
    #: nature); "raise" restores strict fail-fast behaviour for debugging.
    pipeline_on_error: str = "quarantine"

    # ---- misc ----------------------------------------------------------
    #: Workers for parallel stages (Spark stand-in).
    n_workers: int = 4
    #: Execution backend for the parallel map stages: "serial" (plain
    #: loop — fastest for the vectorized, memory-bound kernels at small
    #: fan-out), "thread" or "process" (chunked ProcessPoolExecutor; the
    #: only option that sidesteps the GIL for Python-heavy stages).
    worker_backend: str = "serial"
    #: Transport for the process backend: "shm" ships frame arrays as
    #: shared-memory handles (zero-copy), "pickle" serializes them, and
    #: "auto" (default) uses shared memory whenever the platform supports
    #: it. Ignored by the serial and thread backends.
    worker_transport: str = "auto"
    #: Frames per batch for the batched vision kernels (key-frame HOG
    #: misses, SURF prefetch). Batches amortize numpy dispatch overhead;
    #: the cap keeps a stacked batch's working set cache-resident.
    kernel_batch_size: int = 16
    #: Compute SURF features for key-frames in shape-grouped batches as
    #: soon as each session's key-frames are selected (stage-level
    #: pipelining), instead of one frame at a time on first comparison.
    surf_prefetch: bool = True
    #: RNG seed for the stochastic stages (layout sampling).
    seed: int = 0

    def with_overrides(self, **kwargs) -> "CrowdMapConfig":
        """A copy of this config with selected fields replaced."""
        return replace(self, **kwargs)
