"""CrowdMap core: the paper's contribution.

The four modules of paper Fig. 1, layered over the substrates:

- crowdsourced data collection lives client-side (:mod:`repro.world.walker`
  simulates it; :mod:`repro.backend` receives it);
- indoor path modeling: :mod:`repro.core.keyframes` (HOG key-frame
  selection), :mod:`repro.core.comparison` (hierarchical key-frame
  comparison, S1/S2), :mod:`repro.core.aggregation` (LCSS sequence-based
  trajectory aggregation, S3) and :mod:`repro.core.skeleton` (occupancy
  grid -> Otsu -> alpha shape -> regularized floor path skeleton);
- room layout modeling: :mod:`repro.core.panorama` (per-cell key-frame
  selection + 360-degree stitching) and :mod:`repro.core.room_layout`
  (line segments -> corner evidence -> sampled rectangular models scored
  by surface consistency);
- floor plan modeling: :mod:`repro.core.floorplan` (force-directed room
  arrangement onto the path skeleton).

:mod:`repro.core.pipeline` wires everything into the end-to-end system.
"""

from repro.core.contracts import ContractError, shaped
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyFrame, select_keyframes
from repro.core.comparison import KeyframeComparator, ComparisonResult
from repro.core.aggregation import (
    SequenceAggregator,
    AnchoredTrajectory,
    MergeCandidate,
    lcss_similarity,
)
from repro.core.skeleton import OccupancyGrid, SkeletonResult, reconstruct_skeleton
from repro.core.panorama import PanoramaBuilder, RoomPanorama
from repro.core.room_layout import RoomLayoutEstimator, RoomLayout, LShapedLayout
from repro.core.floorplan import FloorPlanAssembler, PlacedRoom, FloorPlanResult
from repro.core.pipeline import CrowdMapPipeline, ReconstructionResult
from repro.core.multifloor import MultiFloorPipeline, MultiFloorResult, StairLink
from repro.core.incremental import IncrementalCrowdMap
from repro.core.localization import VisualLocalizer, LocalizationEstimate
from repro.core.navigation import SkeletonNavigator, NavigationPath, route_to_room
from repro.core.quality import QualityReport, assess as assess_quality

__all__ = [
    "ContractError",
    "shaped",
    "CrowdMapConfig",
    "KeyFrame",
    "select_keyframes",
    "KeyframeComparator",
    "ComparisonResult",
    "SequenceAggregator",
    "AnchoredTrajectory",
    "MergeCandidate",
    "lcss_similarity",
    "OccupancyGrid",
    "SkeletonResult",
    "reconstruct_skeleton",
    "PanoramaBuilder",
    "RoomPanorama",
    "RoomLayoutEstimator",
    "RoomLayout",
    "LShapedLayout",
    "FloorPlanAssembler",
    "PlacedRoom",
    "FloorPlanResult",
    "CrowdMapPipeline",
    "ReconstructionResult",
    "MultiFloorPipeline",
    "MultiFloorResult",
    "StairLink",
    "IncrementalCrowdMap",
    "VisualLocalizer",
    "LocalizationEstimate",
    "SkeletonNavigator",
    "NavigationPath",
    "route_to_room",
    "QualityReport",
    "assess_quality",
]
