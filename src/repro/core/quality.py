"""Reconstruction self-diagnostics (no ground truth required).

A deployed CrowdMap backend cannot score itself against a ground-truth
plan — but it can tell an operator *where the map is weak* so the
crowdsourcing campaign can be steered ("more spins needed in the north
wing"). These diagnostics read only the reconstruction itself:

- fragmentation: how many disconnected trajectory components remain
  (1 is ideal; more means key-frame anchors never bridged some walks);
- anchor density: matched key-frame pairs per merged trajectory pair;
- skeleton connectivity: number of connected corridor components;
- room confidence: each room's surface-consistency score and panorama
  gap fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.pipeline import ReconstructionResult


@dataclass(frozen=True)
class RoomDiagnostic:
    """Self-reported confidence of one reconstructed room."""

    room_hint: str
    consistency: float
    panorama_gap: float
    sessions: int


@dataclass
class QualityReport:
    """Ground-truth-free health summary of a reconstruction."""

    n_trajectories: int
    n_components: int
    largest_component_fraction: float
    merged_pairs: int
    mean_anchors_per_merge: float
    skeleton_components: int
    skeleton_area_m2: float
    rooms: List[RoomDiagnostic] = field(default_factory=list)

    @property
    def is_fragmented(self) -> bool:
        """True when a substantial share of walks never joined the map."""
        return self.largest_component_fraction < 0.6

    def weakest_rooms(self, k: int = 3) -> List[RoomDiagnostic]:
        """The k rooms an operator should ask the crowd to re-capture."""
        return sorted(self.rooms, key=lambda r: r.consistency)[:k]

    def summary_lines(self) -> List[str]:
        lines = [
            f"trajectories: {self.n_trajectories} in "
            f"{self.n_components} component(s); largest holds "
            f"{self.largest_component_fraction:.0%}",
            f"merged pairs: {self.merged_pairs} "
            f"(mean {self.mean_anchors_per_merge:.1f} anchors each)",
            f"skeleton: {self.skeleton_area_m2:.0f} m^2 in "
            f"{self.skeleton_components} piece(s)",
            f"rooms: {len(self.rooms)}",
        ]
        if self.is_fragmented:
            lines.append(
                "WARNING: map is fragmented - more overlapping walks needed"
            )
        return lines


def assess(result: ReconstructionResult) -> QualityReport:
    """Compute the self-diagnostics for a pipeline result."""
    from scipy.ndimage import label

    aggregation = result.aggregation
    n = len(aggregation.trajectories)
    component_sizes = [len(c) for c in aggregation.components]
    largest = max(component_sizes) if component_sizes else 0

    merged = [c for c in aggregation.candidates if c.mergeable]
    mean_anchors = (
        float(np.mean([c.n_anchor_matches for c in merged])) if merged else 0.0
    )

    _, skeleton_components = label(result.skeleton.skeleton)

    rooms = []
    for pano, layout in zip(result.panoramas, result.layouts):
        rooms.append(
            RoomDiagnostic(
                room_hint=pano.room_hint or "?",
                consistency=layout.consistency,
                panorama_gap=pano.panorama.gap_fraction(),
                sessions=len(pano.session_ids),
            )
        )

    return QualityReport(
        n_trajectories=n,
        n_components=len(aggregation.components),
        largest_component_fraction=(largest / n if n else 0.0),
        merged_pairs=len(merged),
        mean_anchors_per_merge=mean_anchors,
        skeleton_components=int(skeleton_components),
        skeleton_area_m2=result.skeleton.area(),
        rooms=rooms,
    )
