"""Floor path skeleton reconstruction (paper Section III.B.II, Fig. 3a-d).

Six steps over an occupancy grid:

1. initialize the grid to zeros;
2. map every aggregated trajectory onto it, accumulating access counts
   (cells crossed by more trajectories get higher probability);
3. binarize with an automatically selected Otsu threshold, removing the
   errors and outliers of the crowdsourced data;
4. mark boundaries with the alpha-shape algorithm (Delaunay based);
5. regularize the boundaries with the alpha threshold ``h_alpha``;
6. normalize by repairing unconnected paths (morphological closing and
   small-component removal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import CrowdMapConfig
from repro.geometry.alpha_shape import alpha_shape_mask
from repro.geometry.primitives import BoundingBox, Point
from repro.sensors.trajectory import Trajectory
from repro.vision.otsu import otsu_threshold


class OccupancyGrid:
    """Access-probability grid over the building extent (row 0 = south)."""

    def __init__(self, bounds: BoundingBox, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.bounds = bounds
        self.cell_size = cell_size
        self.rows = max(1, int(np.ceil(bounds.height / cell_size)))
        self.cols = max(1, int(np.ceil(bounds.width / cell_size)))
        self.counts = np.zeros((self.rows, self.cols), dtype=np.float64)

    def cell_of(self, x: float, y: float) -> tuple:
        col = int((x - self.bounds.min_x) / self.cell_size)
        row = int((y - self.bounds.min_y) / self.cell_size)
        return row, col

    def center_of(self, row: int, col: int) -> Point:
        return Point(
            self.bounds.min_x + (col + 0.5) * self.cell_size,
            self.bounds.min_y + (row + 0.5) * self.cell_size,
        )

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.rows and 0 <= col < self.cols

    def add_trajectory(self, trajectory: Trajectory, splat_radius: float = 0.0) -> None:
        """Accumulate one trajectory's path onto the grid.

        The polyline is sampled at half-cell steps; each sample marks its
        cell (and, with ``splat_radius``, the disc of cells around it,
        approximating the walker's bodily occupancy). Cells are counted at
        most once per trajectory so repeated passes within one walk don't
        inflate the probability.
        """
        marked = np.zeros_like(self.counts, dtype=bool)
        pts = trajectory.as_array()
        if len(pts) == 0:
            return
        step = self.cell_size / 2.0
        samples = [pts[0]]
        for k in range(len(pts) - 1):
            a, b = pts[k], pts[k + 1]
            dist = float(np.hypot(*(b - a)))
            n_steps = max(1, int(dist / step))
            for t in np.linspace(0.0, 1.0, n_steps + 1)[1:]:
                samples.append(a + t * (b - a))
        radius_cells = int(np.ceil(splat_radius / self.cell_size))
        for x, y in samples:
            row, col = self.cell_of(float(x), float(y))
            for dr in range(-radius_cells, radius_cells + 1):
                for dc in range(-radius_cells, radius_cells + 1):
                    if dr * dr + dc * dc > radius_cells * radius_cells:
                        continue
                    r, c = row + dr, col + dc
                    if self.in_bounds(r, c):
                        marked[r, c] = True
        self.counts += marked

    def probabilities(self) -> np.ndarray:
        """Access probabilities: counts normalized by the max count."""
        peak = self.counts.max()
        if peak == 0:
            return np.zeros_like(self.counts)
        return self.counts / peak


def _binary_closing(mask: np.ndarray, radius: int) -> np.ndarray:
    """Dilate then erode with a square structuring element of ``radius``."""
    if radius <= 0:
        return mask.copy()

    def dilate(m: np.ndarray) -> np.ndarray:
        out = m.copy()
        for dr in range(-radius, radius + 1):
            for dc in range(-radius, radius + 1):
                shifted = np.zeros_like(m)
                src_r = slice(max(0, -dr), m.shape[0] - max(0, dr))
                dst_r = slice(max(0, dr), m.shape[0] - max(0, -dr))
                src_c = slice(max(0, -dc), m.shape[1] - max(0, dc))
                dst_c = slice(max(0, dc), m.shape[1] - max(0, -dc))
                shifted[dst_r, dst_c] = m[src_r, src_c]
                out |= shifted
        return out

    def erode(m: np.ndarray) -> np.ndarray:
        out = m.copy()
        for dr in range(-radius, radius + 1):
            for dc in range(-radius, radius + 1):
                shifted = np.zeros_like(m)
                src_r = slice(max(0, -dr), m.shape[0] - max(0, dr))
                dst_r = slice(max(0, dr), m.shape[0] - max(0, -dr))
                src_c = slice(max(0, -dc), m.shape[1] - max(0, dc))
                dst_c = slice(max(0, dc), m.shape[1] - max(0, -dc))
                shifted[dst_r, dst_c] = m[src_r, src_c]
                out &= shifted
        return out

    return erode(dilate(mask))


def _connected_components(mask: np.ndarray) -> List[np.ndarray]:
    """4-connected components of a boolean mask, as separate masks."""
    from scipy.ndimage import label

    labels, count = label(mask)
    return [labels == i for i in range(1, count + 1)]


@dataclass
class SkeletonResult:
    """Output of skeleton reconstruction, with per-step intermediates."""

    grid: OccupancyGrid
    probability: np.ndarray  # step 2: access probabilities
    binarized: np.ndarray  # step 3: Otsu-thresholded cells
    alpha_mask: np.ndarray  # steps 4-5: regularized alpha shape
    skeleton: np.ndarray  # step 6: repaired final skeleton

    @property
    def bounds(self) -> BoundingBox:
        return self.grid.bounds

    @property
    def cell_size(self) -> float:
        return self.grid.cell_size

    def area(self) -> float:
        return float(self.skeleton.sum()) * self.cell_size**2


def reconstruct_skeleton(
    trajectories: Sequence[Trajectory],
    bounds: BoundingBox,
    config: Optional[CrowdMapConfig] = None,
) -> SkeletonResult:
    """Run the six skeleton-reconstruction steps over aggregated trajectories."""
    config = config or CrowdMapConfig()
    grid = OccupancyGrid(bounds, config.grid_cell_size)  # step 1
    for trajectory in trajectories:  # step 2
        grid.add_trajectory(trajectory, splat_radius=config.trajectory_splat_radius)
    probability = grid.probabilities()

    occupied = probability[probability > 0]
    if occupied.size == 0:
        empty = np.zeros_like(probability, dtype=bool)
        return SkeletonResult(grid, probability, empty, empty, empty)
    # Step 3: Otsu splits the *occupied* cells into low/high access
    # probability and the low class is dropped as crowdsourcing noise. The
    # threshold is capped at a low quantile of the occupied distribution so
    # a degenerate split can never discard the bulk of the corridor mass,
    # and floored at ``min_visits`` passes so lone drift tails always go.
    peak = float(grid.counts.max())
    capped = min(
        otsu_threshold(occupied),
        float(np.quantile(occupied, config.binarize_cap_quantile)),
        float(occupied.max()),
    )
    floor = (config.min_visits - 0.5) / peak if peak > 0 else 0.0
    threshold = max(capped, min(floor, float(occupied.max())))
    binarized = probability >= threshold

    rows, cols = np.nonzero(binarized)  # steps 4-5
    points = np.stack(
        [
            bounds.min_x + (cols + 0.5) * config.grid_cell_size,
            bounds.min_y + (rows + 0.5) * config.grid_cell_size,
        ],
        axis=1,
    )
    if len(points) >= 3:
        alpha_mask = alpha_shape_mask(
            points, config.alpha, bounds, config.grid_cell_size
        )
    else:
        alpha_mask = binarized.copy()

    repaired = _binary_closing(alpha_mask, config.repair_radius)  # step 6
    components = _connected_components(repaired)
    if components:
        # Keep components of meaningful size (>= 5% of the largest); tiny
        # islands are aggregation outliers.
        largest = max(c.sum() for c in components)
        skeleton = np.zeros_like(repaired)
        for comp in components:
            if comp.sum() >= 0.05 * largest:
                skeleton |= comp
    else:
        skeleton = repaired
    return SkeletonResult(grid, probability, binarized, alpha_mask, skeleton)
