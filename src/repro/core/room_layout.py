"""Room layout generation from 360-degree panoramas (Section III.C.II).

The paper's recipe: detect line segments in the panorama (LSD), find the
vanishing structure with the Hough transform, select the vertical segments
marking room corners, then generate thousands of candidate 3D rectangular
room models and keep the one maximizing a pixel-wise surface-consistency
metric (PanoContext).

Our estimator follows the same structure with the consistency metric made
explicit for a cylindrical panorama: the wall-floor boundary row observed
at each panorama column converts (through the camera height) into a
distance-to-wall profile ``d(azimuth)``; a candidate rectangular room —
orientation plus four wall distances — predicts its own profile in closed
form; the sampled candidate minimizing the robust profile error (with a
bonus for placing its corners on detected vertical line segments) wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.config import CrowdMapConfig, planner_mode
from repro.core.panorama import RoomPanorama
from repro.geometry.primitives import Point
from repro.vision.filters import gaussian_blur
from repro.vision.hough import dominant_vertical_columns
from repro.vision.lsd import detect_line_segments
from repro.world.renderer import Camera

TWO_PI = 2.0 * math.pi


def _interpolate_circular(values: np.ndarray) -> np.ndarray:
    """Fill NaNs by linear interpolation on a circular axis."""
    n = len(values)
    valid = np.isfinite(values)
    if valid.all():
        return values
    if not valid.any():
        return np.full(n, 5.0)
    idx = np.arange(n)
    # Unroll the circle: duplicate the valid samples one period out.
    xs = np.concatenate([idx[valid], idx[valid] + n])
    ys = np.concatenate([values[valid], values[valid]])
    filled = values.copy()
    filled[~valid] = np.interp(idx[~valid] + n, xs, ys)
    return filled


@dataclass(frozen=True)
class RoomLayout:
    """A fitted rectangular room model.

    ``orientation`` is the direction (radians, CCW from +x) of the room's
    first wall normal; ``width`` spans along that direction and ``depth``
    across it. ``center`` is the room centre in the panorama's frame
    (i.e. relative to the building skeleton once the capture position is
    known). ``consistency`` is the surface-consistency score of the
    winning model (higher is better).
    """

    center: Point
    width: float
    depth: float
    orientation: float
    consistency: float
    corner_azimuths: Tuple[float, ...] = ()
    #: Wall distances (a, b, c, d) from the capture point along the
    #: normals (theta, theta+pi, theta+pi/2, theta-pi/2); set by the
    #: estimator, used by the L-shaped extension.
    wall_distances: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)

    def area(self) -> float:
        return self.width * self.depth

    def aspect_ratio(self) -> float:
        long_side = max(self.width, self.depth)
        short_side = min(self.width, self.depth)
        return long_side / short_side if short_side > 0 else float("inf")


@dataclass(frozen=True)
class LShapedLayout:
    """A fitted L-shaped room: the union of two same-orientation rectangles.

    Implements the paper's future-work direction for non-rectangular rooms
    (Section VI): each rectangle is parameterized like the base model
    (camera inside both); the union's distance profile is the pointwise
    maximum of the two rectangles' profiles.
    """

    center: Point  # centroid of the union (approximate)
    rect_a: RoomLayout
    rect_b: RoomLayout
    orientation: float
    consistency: float

    def area(self) -> float:
        """Union area: A + B - overlap (same-orientation rectangles)."""
        return (
            self.rect_a.area() + self.rect_b.area() - self._overlap_area()
        )

    def _overlap_area(self) -> float:
        # Work in the shared rotated frame centred on the camera: each
        # rectangle spans [-b, a] x [-d, c] along (theta, theta+90).
        a1, b1, c1, d1 = self.rect_a.wall_distances
        a2, b2, c2, d2 = self.rect_b.wall_distances
        du = max(0.0, min(a1, a2) + min(b1, b2))
        dv = max(0.0, min(c1, c2) + min(d1, d2))
        return du * dv

    def aspect_ratio(self) -> float:
        """Aspect ratio of the union's bounding rectangle."""
        a1, b1, c1, d1 = self.rect_a.wall_distances
        a2, b2, c2, d2 = self.rect_b.wall_distances
        width = max(a1, a2) + max(b1, b2)
        depth = max(c1, c2) + max(d1, d2)
        long_side, short_side = max(width, depth), min(width, depth)
        return long_side / short_side if short_side > 0 else float("inf")

    @property
    def is_rectangular(self) -> bool:
        return self._overlap_area() >= 0.98 * min(
            self.rect_a.area(), self.rect_b.area()
        )


class RoomLayoutEstimator:
    """Samples rectangular room models against a panorama's evidence."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        camera: Optional[Camera] = None,
    ):
        self.config = config or CrowdMapConfig()
        self.camera = camera or Camera()

    # ------------------------------------------------------------------
    # Evidence extraction
    # ------------------------------------------------------------------

    def boundary_profile(
        self, pano: RoomPanorama, gray: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Distance-to-wall (m) per panorama column from wall junctions.

        For each column the wall-floor junction (strongest low vertical
        intensity transition below the horizon) gives the distance as
        ``eye_height / tan(elevation)``; where that junction falls outside
        the frame (very near walls) the wall-ceiling junction is used
        instead with the standard wall height. Columns where neither
        junction is visible are interpolated from their circular
        neighbours, and the profile is median-filtered to suppress
        per-column outliers (posters, scuffs).

        ``gray`` optionally carries the panorama's precomputed grayscale
        plane so the estimator's stages share one conversion.
        """
        from repro.world.floorplan_model import WALL_HEIGHT

        if gray is None:
            gray = pano.panorama.grayscale()
        gray = gaussian_blur(gray, 1.0)
        h, w = gray.shape
        horizon = (h - 1) / 2.0
        focal = self.camera.focal_px
        eye = self.camera.eye_height
        head = WALL_HEIGHT - eye
        dv = np.abs(np.diff(gray, axis=0))  # (h-1, w)

        lo = int(horizon + 4)
        hi = int(horizon - 4)
        floor_band = dv[lo : h - 3, :]
        ceil_band = dv[2:hi, :]

        # Every strong vertical transition is a junction *candidate*: the
        # floor band also contains wainscot lines and poster bottoms, the
        # ceiling band poster tops and light fixtures. Candidates from both
        # bands vote: the column keeps the candidate closest (in log space)
        # to the panorama-wide median, which rejects the systematic
        # impostors (a wainscot line reads 3x too far; a light fixture
        # reads too near) without assuming either junction is visible.
        # One whole-band comparison + nonzero per band (instead of one per
        # column) finds every strong transition; the distances for all
        # candidates are then computed in one vectorized expression and
        # grouped per column as plain Python floats for the pairing pass.
        floor_cands: List[List[float]] = [[] for _ in range(w)]
        ceil_cands: List[List[float]] = [[] for _ in range(w)]
        if floor_band.shape[0] > 2:
            peaks = floor_band.max(axis=0)
            strong = floor_band > (0.45 * peaks)[None, :]
            rows, cols = np.nonzero(strong & (peaks > 1e-3)[None, :])
            rows = rows + lo
            keep = rows < h - 5
            dist = eye * focal / np.maximum(rows[keep] - horizon, 1.0)
            for col, d in zip(cols[keep].tolist(), dist.tolist()):
                floor_cands[col].append(d)
        if ceil_band.shape[0] > 2:
            peaks = ceil_band.max(axis=0)
            strong = ceil_band > (0.45 * peaks)[None, :]
            rows, cols = np.nonzero(strong & (peaks > 1e-3)[None, :])
            rows = rows + 2
            keep = rows > 4
            dist = head * focal / np.maximum(horizon - rows[keep], 1.0)
            for col, d in zip(cols[keep].tolist(), dist.tolist()):
                ceil_cands[col].append(d)

        distances = np.full(w, np.nan)
        tolerance = math.log(1.3)
        for col in range(w):
            floor_c = floor_cands[col]
            ceil_c = ceil_cands[col]
            # The true wall distance is the one both junctions agree on;
            # each impostor (wainscot 3x, poster bottom ~7x, poster top
            # ~2.4x, fixtures <1x) appears in only one band or at a
            # different multiple. Among agreeing (floor, ceiling) pairs the
            # *smallest* is the wall (impostor pairs, when they collide,
            # land farther out).
            best = None
            for f in floor_c:
                for c in ceil_c:
                    if abs(math.log(f / c)) < tolerance:
                        paired = math.sqrt(f * c)
                        if best is None or paired < best:
                            best = paired
            if best is not None:
                distances[col] = best
            elif floor_c or ceil_c:
                distances[col] = min(floor_c + ceil_c)

        # Reject implausibly distant estimates (door/window vistas and
        # missed junctions) relative to the room's typical scale, then
        # fill the gaps from circular neighbours.
        finite = distances[np.isfinite(distances)]
        if finite.size:
            scale = float(np.median(finite))
            distances[distances > 3.5 * scale] = np.nan
        distances = _interpolate_circular(distances)
        # Median filter (window 5) over the circular profile, all columns
        # at once through a windowed view.
        padded = np.concatenate([distances[-2:], distances, distances[:2]])
        filtered = np.median(sliding_window_view(padded, 5), axis=1)
        return np.clip(filtered, 0.3, 40.0)

    def detect_corners(
        self,
        pano: RoomPanorama,
        max_corners: int = 8,
        gray: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Corner azimuths from vertical line-segment evidence (Fig. 5).

        Runs the line-segment detector on the panorama and ranks panorama
        columns by their vertical-segment support (the Hough-style voting
        of :func:`dominant_vertical_columns`). Under the aggressive
        planner profile the detector's coarse support screen runs with
        its tightened (accuracy-gated, not provable) thresholds.
        """
        if gray is None:
            gray = pano.panorama.grayscale()
        segments = detect_line_segments(
            pano.panorama.pixels,
            gray=gray,
            aggressive=planner_mode() == "aggressive",
        )
        ranked = dominant_vertical_columns(segments, pano.width)
        azimuths = []
        for column, _support in ranked[:max_corners]:
            azimuths.append(pano.panorama.azimuth_of_column(column))
        return azimuths

    # ------------------------------------------------------------------
    # Model sampling and scoring
    # ------------------------------------------------------------------

    @staticmethod
    def _predict_profile(
        azimuths: np.ndarray,
        theta: np.ndarray,
        dists: np.ndarray,
    ) -> np.ndarray:
        """Distance profiles of candidate rectangles, (K, C).

        ``theta`` (K,) is each candidate's orientation; ``dists`` (K, 4)
        holds the wall distances along normals theta, theta+pi,
        theta+pi/2, theta-pi/2. A ray along azimuth az exits the rectangle
        at ``min over walls with cos(az - normal) > 0 of
        wall_dist / cos(az - normal)``.

        The (K, 4, C) cosine grid is expanded via the angle-addition
        identity ``cos(az - n) = cos(az)cos(n) + sin(az)sin(n)``: one
        cos/sin pair per candidate (the four normals' terms are sign/swap
        permutations of it) and per azimuth, then multiply-adds — instead
        of K*4*C transcendental evaluations, which dominated this
        function's cost.
        """
        cos_az = np.cos(azimuths)  # (C,)
        sin_az = np.sin(azimuths)
        cos_t = np.cos(theta)  # (K,)
        sin_t = np.sin(theta)
        # The four normals' cosine planes are sign flips of two (K, C)
        # planes: walls theta / theta+pi see +-(cos_t cos_az + sin_t
        # sin_az), walls theta+-pi/2 see +-(-sin_t cos_az + cos_t
        # sin_az). Each plane keeps the multiply-then-add-in-place order
        # of the stacked (K, 4, C) form this replaces, and IEEE negation
        # plus symmetric rounding make the flipped walls exact negations
        # — so every per-element ratio below is unchanged, while the
        # working set drops from one (K, 4, C) cube to (K, C) planes.
        plane_a = cos_t[:, None] * cos_az[None, :]  # (K, C)
        plane_a += sin_t[:, None] * sin_az[None, :]
        plane_b = (-sin_t)[:, None] * cos_az[None, :]
        plane_b += cos_t[:, None] * sin_az[None, :]
        # Walls facing away (cosine <= 1e-6) must not win the min. Rather
        # than an inf-filled buffer plus a where-mask, clamp the
        # denominator: the four normals are exactly 90 deg apart, so some
        # wall always has cosine >= sqrt(2)/2 and ratio <= 40/0.707 — a
        # clamped entry's ratio is >= 0.4/1e-6 and can never be selected,
        # making the min bit-identical while the division runs unmasked
        # in the cosine buffer. The running minimum visits the walls in
        # the same 0..3 order as the stacked form's axis-1 reduce (min is
        # exact, so association cannot change the value anyway).
        profile = None
        for k, plane in enumerate((plane_a, -plane_a, plane_b, -plane_b)):
            np.maximum(plane, 1e-6, out=plane)
            np.divide(dists[:, k, None], plane, out=plane)
            if profile is None:
                profile = plane
            else:
                np.minimum(profile, plane, out=profile)
        return profile  # (K, C)

    def _sample_candidates(
        self,
        profile: np.ndarray,
        azimuths: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw candidate (theta, four wall distances) from the evidence.

        Orientations are drawn around the profile's dominant axis (plus
        uniform exploration); wall distances around the observed profile
        values in each candidate's four normal directions.
        """
        # Dominant axis: the theta in [0, pi/2) maximizing the alignment of
        # profile extremes, estimated from the circular moment of 4*az
        # weighted by 1/d (near walls dominate).
        weights = 1.0 / np.maximum(profile, 0.5)
        moment = np.sum(weights * np.exp(1j * 4.0 * azimuths))
        theta0 = float(np.angle(moment)) / 4.0
        thetas = np.where(
            rng.random(n_samples) < 0.7,
            theta0 + rng.normal(0.0, math.radians(6.0), n_samples),
            rng.uniform(0.0, math.pi / 2.0, n_samples),
        )
        # Observed distance near each candidate's wall normals.
        dists = np.empty((n_samples, 4), dtype=np.float64)
        c = len(azimuths)
        for k in range(4):
            direction = thetas + (0.0, math.pi, math.pi / 2.0, -math.pi / 2.0)[k]
            idx = np.round(
                (np.mod(direction, TWO_PI)) / TWO_PI * c
            ).astype(int) % c
            base = profile[idx]
            dists[:, k] = base * rng.lognormal(0.0, 0.18, n_samples)
        dists = np.clip(dists, 0.4, 40.0)
        return thetas, dists

    def _score(
        self,
        predicted: np.ndarray,
        profile: np.ndarray,
        thetas: np.ndarray,
        corner_azimuths: List[float],
        log_profile: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Surface-consistency score per candidate (higher is better).

        ``log_profile`` optionally carries a precomputed ``np.log(profile)``
        (it is loop-invariant across sampling rounds). ``predicted`` is
        consumed: the log-error chain runs in place on it.
        """
        if log_profile is None:
            log_profile = np.log(profile)
        log_err = np.log(predicted, out=predicted)
        log_err -= log_profile[None, :]
        np.abs(log_err, out=log_err)
        np.minimum(log_err, 1.0, out=log_err)
        consistency = -log_err.mean(axis=1)
        if corner_azimuths:
            # Bonus when a candidate's corners align with detected
            # vertical-line azimuths.
            corners = np.array(corner_azimuths)
            # Candidate corner azimuths follow from theta and distances
            # only loosely; reward orientation agreement mod pi/2.
            diffs = np.abs(
                np.angle(
                    np.exp(1j * 4.0 * (thetas[:, None] - corners[None, :]))
                )
            ) / 4.0
            consistency += 0.1 * np.exp(-diffs.min(axis=1) / math.radians(5.0))
        return consistency

    def estimate(self, pano: RoomPanorama) -> RoomLayout:
        """Fit the best rectangular room model to a panorama.

        Samples ``layout_samples`` candidate models (paper: 20,000; default
        here 2,000 — see DESIGN.md) and returns the surface-consistency
        winner.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        # Panorama.grayscale() memoizes, so both evidence stages below
        # share one grayscale conversion.
        profile = self.boundary_profile(pano)
        c = len(profile)
        azimuths = np.arange(c) / c * TWO_PI
        corner_azimuths = self.detect_corners(pano)
        log_profile = np.log(profile)

        best_params: Optional[Tuple[float, np.ndarray]] = None
        best_score = -np.inf

        def consider(thetas: np.ndarray, dists: np.ndarray) -> None:
            nonlocal best_params, best_score
            predicted = self._predict_profile(azimuths, thetas, dists)
            scores = self._score(
                predicted, profile, thetas, corner_azimuths, log_profile
            )
            k = int(np.argmax(scores))
            if scores[k] > best_score:
                best_score = float(scores[k])
                best_params = (float(thetas[k]), dists[k].copy())

        # Exploration round, then two refinement rounds with shrinking
        # perturbations around the incumbent (the paper's 20,000-sample
        # search, spent adaptively).
        budgets = [
            max(1, int(cfg.layout_samples * 0.6)),
            max(1, int(cfg.layout_samples * 0.25)),
            max(1, int(cfg.layout_samples * 0.15)),
        ]
        chunk = 4000
        remaining = budgets[0]
        while remaining > 0:
            n = min(chunk, remaining)
            remaining -= n
            thetas, dists = self._sample_candidates(profile, azimuths, n, rng)
            consider(thetas, dists)
        for budget, theta_sigma, dist_sigma in (
            (budgets[1], math.radians(2.0), 0.06),
            (budgets[2], math.radians(0.7), 0.02),
        ):
            assert best_params is not None
            theta0, dists0 = best_params
            remaining = budget
            while remaining > 0:
                n = min(chunk, remaining)
                remaining -= n
                thetas = theta0 + rng.normal(0.0, theta_sigma, n)
                dists = np.clip(
                    dists0[None, :] * rng.lognormal(0.0, dist_sigma, (n, 4)),
                    0.4, 40.0,
                )
                consider(thetas, dists)

        assert best_params is not None  # layout_samples >= 1
        theta, (a, b, cc, d) = best_params
        ux, uy = math.cos(theta), math.sin(theta)
        vx, vy = -uy, ux
        center = Point(
            pano.capture_position.x + (a - b) / 2.0 * ux + (cc - d) / 2.0 * vx,
            pano.capture_position.y + (a - b) / 2.0 * uy + (cc - d) / 2.0 * vy,
        )
        return RoomLayout(
            center=center,
            width=float(a + b),
            depth=float(cc + d),
            orientation=theta,
            consistency=best_score,
            corner_azimuths=tuple(corner_azimuths[:4]),
            wall_distances=(float(a), float(b), float(cc), float(d)),
        )

    # ------------------------------------------------------------------
    # Non-rectangular extension (paper Section VI future work)
    # ------------------------------------------------------------------

    def estimate_lshape(self, pano: RoomPanorama) -> LShapedLayout:
        """Fit an L-shaped model: the union of two co-oriented rectangles.

        Both rectangles contain the camera, so a ray leaves the union at
        the *farther* of its two rectangle exits — the predicted profile is
        the pointwise maximum. Sampling seeds the first rectangle with the
        best rectangular fit and explores the second around the residual
        (the profile regions the rectangle under-explains).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        profile = self.boundary_profile(pano)
        c = len(profile)
        azimuths = np.arange(c) / c * TWO_PI
        base = self.estimate(pano)
        theta0 = base.orientation

        # Per-wall wedge statistics: the profile values within +-45 deg of
        # each wall normal. The core rectangle samples near each wedge's
        # *low* quantile (the true near wall); the extended arm pushes one
        # wall toward its wedge's *high* quantile (the alcove's far wall).
        normals = theta0 + np.array([0.0, math.pi, math.pi / 2.0, -math.pi / 2.0])
        wedge_q = np.zeros((4, 3))
        for j, normal in enumerate(normals):
            diff = np.angle(np.exp(1j * (azimuths - normal)))
            wedge = profile[np.abs(diff) < math.pi / 4.0]
            if wedge.size == 0:
                wedge = profile
            wedge_q[j] = np.quantile(wedge, [0.25, 0.5, 0.9])

        best_score = -np.inf
        best = None
        n_total = max(200, cfg.layout_samples // 2)
        chunk = 2000

        log_profile = np.log(profile)

        def consider(thetas, d_a, d_b):
            nonlocal best_score, best
            pred_a = self._predict_profile(azimuths, thetas, d_a)
            pred_b = self._predict_profile(azimuths, thetas, d_b)
            predicted = np.maximum(pred_a, pred_b, out=pred_a)
            log_err = np.log(predicted, out=predicted)
            log_err -= log_profile[None, :]
            np.abs(log_err, out=log_err)
            np.minimum(log_err, 1.0, out=log_err)
            scores = -log_err.mean(axis=1)
            k = int(np.argmax(scores))
            if scores[k] > best_score:
                best_score = float(scores[k])
                best = (float(thetas[k]), d_a[k].copy(), d_b[k].copy())

        remaining = n_total
        while remaining > 0:
            n = min(chunk, remaining)
            remaining -= n
            thetas = theta0 + rng.normal(0.0, math.radians(3.0), n)
            # Core rectangle near the wedges' near walls.
            d_a = np.clip(
                wedge_q[None, :, 0] * rng.lognormal(0.0, 0.15, (n, 4)),
                0.4, 40.0,
            )
            # Arm: copy the core, extend one randomly chosen wall to the
            # wedge's far quantile; optionally tighten the perpendicular
            # pair so the arm stays narrow.
            d_b = d_a * rng.lognormal(0.0, 0.1, (n, 4))
            arms = rng.integers(0, 4, n)
            arm_dist = wedge_q[arms, 2] * rng.lognormal(0.0, 0.15, n)
            d_b[np.arange(n), arms] = arm_dist
            perp = np.where(arms < 2, 2, 0)  # index of a perpendicular wall
            d_b[np.arange(n), perp] *= rng.uniform(0.3, 1.0, n)
            d_b[np.arange(n), perp + 1] *= rng.uniform(0.3, 1.0, n)
            d_b = np.clip(d_b, 0.4, 40.0)
            consider(thetas, d_a, d_b)

        # Refinement round around the incumbent.
        assert best is not None
        theta_i, da_i, db_i = best
        n = max(200, n_total // 2)
        thetas = theta_i + rng.normal(0.0, math.radians(1.0), n)
        d_a = np.clip(da_i[None, :] * rng.lognormal(0.0, 0.05, (n, 4)), 0.4, 40.0)
        d_b = np.clip(db_i[None, :] * rng.lognormal(0.0, 0.05, (n, 4)), 0.4, 40.0)
        consider(thetas, d_a, d_b)

        theta, da, db = best

        def rect(d):
            a, b, cc, dd = d
            ux, uy = math.cos(theta), math.sin(theta)
            vx, vy = -uy, ux
            centre = Point(
                pano.capture_position.x + (a - b) / 2.0 * ux + (cc - dd) / 2.0 * vx,
                pano.capture_position.y + (a - b) / 2.0 * uy + (cc - dd) / 2.0 * vy,
            )
            return RoomLayout(
                center=centre, width=float(a + b), depth=float(cc + dd),
                orientation=theta, consistency=best_score,
                wall_distances=tuple(float(x) for x in d),
            )

        rect_a, rect_b = rect(da), rect(db)
        centroid = Point(
            (rect_a.center.x * rect_a.area() + rect_b.center.x * rect_b.area())
            / (rect_a.area() + rect_b.area()),
            (rect_a.center.y * rect_a.area() + rect_b.center.y * rect_b.area())
            / (rect_a.area() + rect_b.area()),
        )
        return LShapedLayout(
            center=centroid, rect_a=rect_a, rect_b=rect_b,
            orientation=theta, consistency=best_score,
        )

    def estimate_auto(self, pano: RoomPanorama, complexity_penalty: float = 0.015):
        """Pick the rectangular or L-shaped model by penalized consistency.

        The L model has five extra parameters, so it must beat the
        rectangle by ``complexity_penalty`` in consistency to be chosen —
        matching the paper's observation that ~90% of rooms are rectangular
        and should stay so.
        """
        rect = self.estimate(pano)
        lshape = self.estimate_lshape(pano)
        if lshape.consistency > rect.consistency + complexity_penalty:
            return lshape
        return rect
