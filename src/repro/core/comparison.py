"""Hierarchical key-frame comparison (paper Section III.B.I).

Two steps, exactly as the paper lays them out:

1. A cheap linear combination ``S1`` of three off-the-shelf signatures —
   Color Indexing histograms, shape matching and wavelet decomposition —
   rejects clearly different pairs before any expensive work ("this is
   significant to prevent wrong trajectories aggregation").
2. Surviving pairs are matched precisely with SURF descriptors via the
   mutual-nearest-neighbour procedure of Algorithm 1 and scored with
   ``S2 = |A| / |F1 ∪ F2|`` (Eq. 1); the pair is declared identical when
   ``S2 > h_f``.

On top of the paper's two rungs we add an inertial gate: key-frames whose
device headings differ by more than ``max_heading_difference`` cannot show
the same scene from the same walkway direction and are skipped outright —
the same Δω information the panorama stage already relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.backend.cache import config_fingerprint, frame_digest, get_cache
from repro.core.config import CrowdMapConfig
from repro.core.keyframes import KeyFrame
from repro.geometry.primitives import angle_difference
from repro.vision.color_histogram import histogram_intersection
from repro.vision.matching import match_descriptors
from repro.vision.shape_matching import shape_similarity
from repro.vision.wavelet import wavelet_similarity


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing two key-frames."""

    s1: float
    s2: float
    matched: bool
    stage: str  # which stage decided: "heading", "s1", "s2"

    def __bool__(self) -> bool:
        return self.matched


class KeyframeComparator:
    """Stateful comparator holding the thresholds and counters.

    Counters expose how much work each rung of the hierarchy saved, which
    the latency benchmark (paper Fig. 7c) reports.
    """

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()
        self.n_heading_rejects = 0
        self.n_s1_rejects = 0
        self.n_surf_comparisons = 0

    def s1_score(self, a: KeyFrame, b: KeyFrame) -> float:
        """Weighted combination of the three cheap similarities."""
        a.ensure_signatures()
        b.ensure_signatures()
        w_color, w_shape, w_wavelet = self.config.s1_weights
        score = (
            w_color * histogram_intersection(a.color, b.color)
            + w_shape * shape_similarity(a.shape, b.shape)
            + w_wavelet * wavelet_similarity(a.wavelet, b.wavelet)
        )
        total = w_color + w_shape + w_wavelet
        return score / total if total > 0 else 0.0

    def s2_score(self, a: KeyFrame, b: KeyFrame) -> float:
        """SURF mutual-NN similarity (Eq. 1).

        Scores are content-addressed on the *pair* of frame digests plus
        the SURF thresholds: the anchored-frame half of every incremental
        comparison repeats across pipeline re-runs, so a cached pair skips
        both descriptor extraction and matching.
        """
        self.n_surf_comparisons += 1
        key = (
            frame_digest(a.frame)
            + frame_digest(b.frame)
            + config_fingerprint(
                self.config,
                (
                    "surf_response_threshold",
                    "surf_max_features",
                    "surf_distance_threshold",
                ),
            )
        )

        def compute() -> float:
            result = match_descriptors(
                a.ensure_surf(),
                b.ensure_surf(),
                distance_threshold=self.config.surf_distance_threshold,
                precomputed_a=a.surf_matching_arrays(),
                precomputed_b=b.surf_matching_arrays(),
            )
            return result.similarity

        return get_cache().get_or_compute("s2_score", key, compute)

    def compare(self, a: KeyFrame, b: KeyFrame) -> ComparisonResult:
        """Full hierarchical comparison of two key-frames."""
        cfg = self.config
        heading_gap = abs(angle_difference(a.heading, b.heading))
        if heading_gap > cfg.max_heading_difference:
            self.n_heading_rejects += 1
            return ComparisonResult(s1=0.0, s2=0.0, matched=False, stage="heading")
        s1 = self.s1_score(a, b)
        if s1 < cfg.s1_threshold:
            self.n_s1_rejects += 1
            return ComparisonResult(s1=s1, s2=0.0, matched=False, stage="s1")
        s2 = self.s2_score(a, b)
        return ComparisonResult(
            s1=s1, s2=s2, matched=s2 > cfg.s2_threshold, stage="s2"
        )

    def matches(self, a: KeyFrame, b: KeyFrame) -> bool:
        return self.compare(a, b).matched
