"""Navigation on the reconstructed floor plan.

The paper's opening line motivates floor plans with "localization and
navigation"; localization lives in :mod:`repro.core.localization`, and
this module provides the navigation half: A* path planning over the
reconstructed skeleton's accessible cells, with room-door goals derived
from the placed room rectangles.

Because the planner runs on the *reconstructed* map, its success is a
functional end-to-end test of reconstruction quality: a skeleton with a
broken corridor cannot route across the break.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.floorplan import FloorPlanResult
from repro.core.skeleton import SkeletonResult
from repro.geometry.primitives import Point


@dataclass(frozen=True)
class NavigationPath:
    """A planned route over the skeleton."""

    waypoints: Tuple[Point, ...]
    length: float

    @property
    def found(self) -> bool:
        return len(self.waypoints) > 0


class SkeletonNavigator:
    """A* planner over a reconstructed skeleton's accessible cells."""

    _NEIGHBOURS = (
        (-1, 0, 1.0), (1, 0, 1.0), (0, -1, 1.0), (0, 1, 1.0),
        (-1, -1, math.sqrt(2)), (-1, 1, math.sqrt(2)),
        (1, -1, math.sqrt(2)), (1, 1, math.sqrt(2)),
    )

    def __init__(self, skeleton: SkeletonResult):
        self.skeleton = skeleton
        self._mask = skeleton.skeleton
        self._cell = skeleton.cell_size
        self._bounds = skeleton.bounds

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (
            int((p.y - self._bounds.min_y) / self._cell),
            int((p.x - self._bounds.min_x) / self._cell),
        )

    def _point_of(self, cell: Tuple[int, int]) -> Point:
        row, col = cell
        return Point(
            self._bounds.min_x + (col + 0.5) * self._cell,
            self._bounds.min_y + (row + 0.5) * self._cell,
        )

    def _nearest_accessible(self, p: Point, max_radius_m: float = 4.0):
        """Closest skeleton cell to ``p`` (or None beyond the radius)."""
        rows, cols = np.nonzero(self._mask)
        if rows.size == 0:
            return None
        xs = self._bounds.min_x + (cols + 0.5) * self._cell
        ys = self._bounds.min_y + (rows + 0.5) * self._cell
        d = np.hypot(xs - p.x, ys - p.y)
        k = int(np.argmin(d))
        if d[k] > max_radius_m:
            return None
        return (int(rows[k]), int(cols[k]))

    def plan(self, start: Point, goal: Point) -> NavigationPath:
        """Shortest skeleton path between two world points.

        Both endpoints snap to their nearest accessible cells first; an
        empty path is returned when either snap fails or no route exists.
        """
        start_cell = self._nearest_accessible(start)
        goal_cell = self._nearest_accessible(goal)
        if start_cell is None or goal_cell is None:
            return NavigationPath(waypoints=(), length=float("inf"))

        def heuristic(cell: Tuple[int, int]) -> float:
            return math.hypot(cell[0] - goal_cell[0], cell[1] - goal_cell[1])

        rows, cols = self._mask.shape
        open_heap: List[Tuple[float, Tuple[int, int]]] = [
            (heuristic(start_cell), start_cell)
        ]
        g_score: Dict[Tuple[int, int], float] = {start_cell: 0.0}
        came_from: Dict[Tuple[int, int], Tuple[int, int]] = {}
        closed = set()
        while open_heap:
            _, current = heapq.heappop(open_heap)
            if current == goal_cell:
                return self._reconstruct(came_from, current)
            if current in closed:
                continue
            closed.add(current)
            r, c = current
            for dr, dc, cost in self._NEIGHBOURS:
                nr, nc = r + dr, c + dc
                if not (0 <= nr < rows and 0 <= nc < cols):
                    continue
                if not self._mask[nr, nc]:
                    continue
                neighbour = (nr, nc)
                tentative = g_score[current] + cost
                if tentative < g_score.get(neighbour, float("inf")):
                    g_score[neighbour] = tentative
                    came_from[neighbour] = current
                    heapq.heappush(
                        open_heap, (tentative + heuristic(neighbour), neighbour)
                    )
        return NavigationPath(waypoints=(), length=float("inf"))

    def _reconstruct(self, came_from, current) -> NavigationPath:
        cells = [current]
        while current in came_from:
            current = came_from[current]
            cells.append(current)
        cells.reverse()
        points = [self._point_of(c) for c in cells]
        length = sum(
            points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)
        )
        return NavigationPath(waypoints=tuple(points), length=length)


def route_to_room(
    floorplan: FloorPlanResult,
    start: Point,
    room_name: str,
    navigator: Optional[SkeletonNavigator] = None,
) -> NavigationPath:
    """Plan from ``start`` to the named placed room's nearest edge point.

    ``navigator`` lets callers that answer many routing queries against
    the same skeleton (the serving layer) reuse one planner instead of
    rebuilding it per request.
    """
    room = floorplan.room_by_name(room_name)
    if navigator is None:
        navigator = SkeletonNavigator(floorplan.skeleton)
    # Aim for the point on the room's bounding box closest to the skeleton
    # (a stand-in for its door, which the reconstruction does not know).
    bb = room.bounding_box()
    candidates = [
        Point((bb.min_x + bb.max_x) / 2.0, bb.min_y),
        Point((bb.min_x + bb.max_x) / 2.0, bb.max_y),
        Point(bb.min_x, (bb.min_y + bb.max_y) / 2.0),
        Point(bb.max_x, (bb.min_y + bb.max_y) / 2.0),
    ]
    best: Optional[NavigationPath] = None
    for goal in candidates:
        path = navigator.plan(start, goal)
        if path.found and (best is None or path.length < best.length):
            best = path
    return best if best is not None else NavigationPath((), float("inf"))
