"""Multi-floor reconstruction (paper Section VI).

"The task of constructing multiple floors can be decomposed into multiple
1-floor map constructions. One possible solution is to use stairs,
elevators and escalators as special reference points and connect multiple
1-floor maps at these reference points." Floors are told apart by the
barometer/acceleration signals (:mod:`repro.sensors.activity`); stair and
elevator sessions become :class:`StairLink` reference points joining the
per-floor reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import CrowdMapConfig
from repro.core.pipeline import CrowdMapPipeline, ReconstructionResult
from repro.geometry.primitives import Point
from repro.sensors.activity import (
    FloorTransition,
    detect_floor_transitions,
    floor_of_session,
)


@dataclass(frozen=True)
class StairLink:
    """A vertical connection between two floors at a reference position."""

    floor_from: int
    floor_to: int
    position: Point  # device-estimated stairwell position
    kind: str  # "stairs" or "elevator"
    session_id: str


@dataclass
class MultiFloorResult:
    """Per-floor reconstructions plus the links that join them."""

    floors: Dict[int, ReconstructionResult]
    links: List[StairLink]
    sessions_per_floor: Dict[int, int] = field(default_factory=dict)

    def floor_indices(self) -> List[int]:
        return sorted(self.floors)

    def links_between(self, floor_a: int, floor_b: int) -> List[StairLink]:
        lo, hi = min(floor_a, floor_b), max(floor_a, floor_b)
        return [
            link for link in self.links
            if {link.floor_from, link.floor_to} == {lo, hi}
        ]


class MultiFloorPipeline:
    """Decomposes a mixed-floor session stream into per-floor maps.

    Sessions are classified by their barometric signature: sessions with a
    detected floor transition become link reference points; the rest are
    binned by floor index and fed to one :class:`CrowdMapPipeline` per
    floor.
    """

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()

    def classify_sessions(self, sessions: Sequence) -> Dict[str, object]:
        """Split sessions into per-floor groups and transition links."""
        per_floor: Dict[int, List] = {}
        links: List[StairLink] = []
        for session in sessions:
            transitions = detect_floor_transitions(session.imu)
            if transitions:
                links.extend(self._links_from(session, transitions))
                continue
            floor = floor_of_session(session.imu)
            per_floor.setdefault(floor, []).append(session)
        return {"per_floor": per_floor, "links": links}

    def _links_from(
        self, session, transitions: List[FloorTransition]
    ) -> List[StairLink]:
        links = []
        traj = session.device_trajectory
        floor = floor_of_session_start(session)
        for transition in transitions:
            if len(traj):
                idx = traj.nearest_index(transition.t_start)
                position = Point(traj[idx].x, traj[idx].y)
            else:
                position = Point(0.0, 0.0)
            links.append(
                StairLink(
                    floor_from=floor,
                    floor_to=floor + transition.delta_floors,
                    position=position,
                    kind=transition.kind.value,
                    session_id=session.session_id,
                )
            )
            floor += transition.delta_floors
        return links

    def run(self, sessions: Sequence) -> MultiFloorResult:
        """Classify, reconstruct each floor, and return the linked result.

        Floors whose session group has no SWS walks are skipped (nothing to
        build a skeleton from).
        """
        classified = self.classify_sessions(sessions)
        per_floor: Dict[int, List] = classified["per_floor"]
        results: Dict[int, ReconstructionResult] = {}
        counts: Dict[int, int] = {}
        for floor, floor_sessions in sorted(per_floor.items()):
            counts[floor] = len(floor_sessions)
            if not any(s.task == "SWS" for s in floor_sessions):
                continue
            pipeline = CrowdMapPipeline(self.config)
            results[floor] = pipeline.run_sessions(floor_sessions)
        return MultiFloorResult(
            floors=results,
            links=classified["links"],
            sessions_per_floor=counts,
        )


def floor_of_session_start(session) -> int:
    """Floor index at a session's start (median of the first seconds)."""
    import numpy as np

    from repro.sensors.activity import FLOOR_HEIGHT, estimate_altitude

    altitude = estimate_altitude(session.imu)
    if altitude.size == 0:
        return 0
    head = altitude[: max(1, altitude.size // 10)]
    return int(np.round(float(np.median(head)) / FLOOR_HEIGHT))
