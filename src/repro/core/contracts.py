"""Array shape/dtype contracts for the numerical kernels.

CrowdInside and Walk2Map both report that silent sensor/shape mismatches
are the dominant failure mode when fusing heterogeneous trajectory data;
in a pure-numpy stack a transposed point array or a broadcast (N, 1)
column usually *runs* and quietly corrupts the reconstruction. The
``@shaped`` decorator makes the contract explicit at the function
boundary and checkable at runtime::

    @shaped(src="(N,2) float64", dst="(N,2) float64", out="(3,3)")
    def estimate_homography(src, dst): ...

Spec grammar
------------
A spec is ``"(dim,dim,...) [dtype] [label...]"``:

- a dim is an integer (exact), an identifier (a symbol bound on first
  use and required to match everywhere it reappears — across *all*
  arguments of one call, so ``(N,2)``/``(N,2)`` enforces equal lengths),
  or ``?`` (unconstrained);
- an optional dtype token (``float64``, ``bool``, ...) asserts the exact
  numpy dtype;
- any remaining tokens are a human label (``homography``,
  ``descriptors``) and are ignored by the checker;
- alternatives are separated by ``|``: ``"(H,W)|(H,W,3)"`` accepts a
  grayscale or an RGB image (symbols still bind across alternatives).

``out=...`` declares the return-value contract. Parameters whose value
is None are skipped (optional arrays).

Modes
-----
The checker runs in one of three modes — ``off`` (the wrapper forwards
immediately; one global read of cost), ``warn`` (violations are
``warnings.warn``-ed), ``strict`` (violations raise
:class:`ContractError`). The initial mode comes from the
``CROWDMAP_CONTRACTS`` environment variable (default ``off``);
``tests/conftest.py`` switches to ``strict`` so the whole suite runs
with contracts enforced, and the CI ``static-analysis`` job exports
``CROWDMAP_CONTRACTS=strict`` explicitly.

Unknown parameter names in a ``@shaped`` declaration raise at import
time — a typo in a contract can never silently disable it.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["ContractError", "ContractWarning", "shaped", "set_mode", "get_mode"]

F = TypeVar("F", bound=Callable[..., Any])

OFF, WARN, STRICT = "off", "warn", "strict"
_VALID_MODES = (OFF, WARN, STRICT)


class ContractError(TypeError, ValueError):
    """An array violated its declared shape/dtype contract.

    Subclasses both ``TypeError`` and ``ValueError``: the kernels raised
    ``ValueError`` for shape mismatches before contracts existed, and a
    contract firing ahead of the legacy check must stay catchable by
    callers (and tests) written against either type.
    """


class ContractWarning(UserWarning):
    """A contract violation reported in ``warn`` mode."""


def _initial_mode() -> str:
    raw = os.environ.get("CROWDMAP_CONTRACTS", OFF).strip().lower()
    if raw in ("", "0", "false", "no"):
        return OFF
    if raw in ("1", "true", "yes", "on"):
        return STRICT
    if raw not in _VALID_MODES:
        raise ValueError(
            f"CROWDMAP_CONTRACTS={raw!r}: expected one of {_VALID_MODES}"
        )
    return raw


_mode = _initial_mode()


def set_mode(mode: str) -> None:
    """Switch contract checking globally: 'off', 'warn' or 'strict'."""
    global _mode
    if mode not in _VALID_MODES:
        raise ValueError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
    _mode = mode


def get_mode() -> str:
    """The current contract-checking mode."""
    return _mode


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------

_SHAPE_RE = re.compile(r"^\((?P<dims>[^)]*)\)(?P<rest>.*)$")

#: One parsed alternative: dims are int (exact), str (symbol) or None (?).
_Alternative = Tuple[Tuple[Optional[object], ...], Optional[np.dtype]]


@functools.lru_cache(maxsize=None)
def _parse_spec(spec: str) -> Tuple[_Alternative, ...]:
    alternatives: List[_Alternative] = []
    for alt in spec.split("|"):
        alt = alt.strip()
        match = _SHAPE_RE.match(alt)
        if match is None:
            raise ValueError(
                f"bad contract spec {spec!r}: each alternative must start "
                "with a parenthesized shape like '(N,2)'"
            )
        dims: List[Optional[object]] = []
        dims_text = match.group("dims").strip()
        if dims_text:
            tokens = [t.strip() for t in dims_text.split(",")]
            if tokens and tokens[-1] == "":
                tokens.pop()  # "(D,)" — tuple-style trailing comma
            for token in tokens:
                if token == "?":
                    dims.append(None)
                elif re.fullmatch(r"\d+", token):
                    dims.append(int(token))
                elif re.fullmatch(r"[A-Za-z_]\w*", token):
                    dims.append(token)
                else:
                    raise ValueError(
                        f"bad contract spec {spec!r}: dim token {token!r} is "
                        "not an int, identifier or '?'"
                    )
        dtype: Optional[np.dtype] = None
        rest = match.group("rest").split()
        if rest:
            try:
                dtype = np.dtype(rest[0])
            except TypeError:
                dtype = None  # a human label, not a dtype
        alternatives.append((tuple(dims), dtype))
    return tuple(alternatives)


def _check_value(
    value: Any,
    spec: str,
    bindings: Dict[str, int],
    func_name: str,
    where: str,
) -> Optional[str]:
    """Return an error message if ``value`` violates ``spec``, else None.

    Successful symbol bindings are committed to ``bindings`` so later
    arguments of the same call must agree.
    """
    if not isinstance(value, np.ndarray):
        return (
            f"{func_name}: {where} must be a numpy array per contract "
            f"{spec!r}, got {type(value).__name__}"
        )
    failures: List[str] = []
    for dims, dtype in _parse_spec(spec):
        if value.ndim != len(dims):
            failures.append(f"rank {len(dims)} != {value.ndim}")
            continue
        trial = dict(bindings)
        ok = True
        for dim, actual in zip(dims, value.shape):
            if dim is None:
                continue
            if isinstance(dim, int):
                if actual != dim:
                    failures.append(f"dim {dim} != {actual}")
                    ok = False
                    break
            else:  # symbol
                bound = trial.get(dim)
                if bound is None:
                    trial[dim] = actual
                elif bound != actual:
                    failures.append(f"{dim}={bound} but got {actual}")
                    ok = False
                    break
        if not ok:
            continue
        if dtype is not None and value.dtype != dtype:
            failures.append(f"dtype {dtype} != {value.dtype}")
            continue
        bindings.clear()
        bindings.update(trial)
        return None
    bound_note = f" (bound: {bindings})" if bindings else ""
    return (
        f"{func_name}: {where} violates contract {spec!r}: got shape "
        f"{value.shape} dtype {value.dtype} [{'; '.join(failures)}]{bound_note}"
    )


def _report(message: str) -> None:
    if _mode == STRICT:
        raise ContractError(message)
    warnings.warn(message, ContractWarning, stacklevel=3)


def shaped(out: Optional[str] = None, **param_specs: str) -> Callable[[F], F]:
    """Declare array shape/dtype contracts on a function's boundary.

    ``param_specs`` maps parameter names to spec strings; ``out`` is the
    return-value spec. See the module docstring for the grammar.
    """
    for spec in list(param_specs.values()) + ([out] if out else []):
        _parse_spec(spec)  # fail at import time on a malformed spec

    def decorate(func: F) -> F:
        signature = inspect.signature(func)
        unknown = set(param_specs) - set(signature.parameters)
        if unknown:
            raise TypeError(
                f"@shaped on {func.__qualname__}: unknown parameter(s) "
                f"{sorted(unknown)} — contract names must match the signature"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _mode == OFF:
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bindings: Dict[str, int] = {}
            for name, spec in param_specs.items():
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                error = _check_value(
                    value, spec, bindings, func.__qualname__, f"argument '{name}'"
                )
                if error is not None:
                    _report(error)
            result = func(*args, **kwargs)
            if out is not None and result is not None:
                error = _check_value(
                    result, out, bindings, func.__qualname__, "return value"
                )
                if error is not None:
                    _report(error)
            return result

        wrapper.__crowdmap_contracts__ = dict(param_specs, **({"return": out} if out else {}))  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
