"""The end-to-end CrowdMap pipeline (cloud-backend cascade).

Mirrors the paper's three backend sub-processes:

1. **Indoor pathway reconstruction** — key-frame selection per SWS
   session, sequence-based trajectory aggregation, occupancy-grid floor
   path skeleton.
2. **Room layout reconstruction** — SRS sessions grouped by skeleton cell,
   panorama stitching per group, rectangular-model fitting per panorama.
3. **Floor plan modeling** — force-directed merge of rooms and skeleton.

The pipeline is deterministic given the dataset and config, parallelizes
its embarrassingly parallel stages through the worker substrate, and
reports per-stage wall-clock timings (the paper's Fig. 7c latency data).

Failure semantics: crowdsourced uploads are unreliable, so the pipeline
*degrades* instead of dying (``config.pipeline_on_error="quarantine"``,
the default). A session whose key-frame selection fails, or a panorama
group that cannot be stitched, is quarantined into
:attr:`ReconstructionResult.failures` — with telemetry counters
(``sessions_quarantined``, ``panorama_groups_quarantined``) — while the
healthy remainder still produces a floor plan. The paper's premise is
that quality grows with trajectory quantity (Fig. 7a); one corrupt
upload must never zero it. Set ``pipeline_on_error="raise"`` to restore
strict fail-fast behaviour.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.telemetry import TelemetryRegistry, default_registry
from repro.backend.workers import (
    MAP_BACKENDS,
    MAP_TRANSPORTS,
    map_parallel,
    map_with_failures,
)
from repro.core.aggregation import (
    AggregationResult,
    AnchoredTrajectory,
    SequenceAggregator,
    calibrate_drift,
)
from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig, planner_mode
from repro.core.floorplan import FloorPlanAssembler, FloorPlanResult
from repro.core.keyframes import KeyFrame, prefetch_surf, select_keyframes
from repro.core.panorama import PanoramaBuilder, PanoramaCoverageError, RoomPanorama
from repro.core.room_layout import RoomLayout, RoomLayoutEstimator
from repro.core.skeleton import SkeletonResult, reconstruct_skeleton
from repro.geometry.primitives import BoundingBox, Point
from repro.world.crowd import CrowdDataset
from repro.world.walker import CaptureSession


#: Installed by ``repro/__init__``: ``(pipeline, mode) -> planner`` where
#: the planner exposes ``run_sessions``. Kept as an injection point (like
#: the keyframe blur dispatcher) because ``repro.dataflow`` sits above
#: ``core`` only through the unlayered package root in the CM010 DAG.
_planner_factory = None


def set_planner_factory(factory) -> None:
    """Install the dataflow-planner factory (called by package wiring)."""
    global _planner_factory
    _planner_factory = factory


@dataclass(frozen=True)
class StageFailure:
    """One quarantined item: which stage rejected what, and why."""

    stage: str      # "keyframes" (per SWS session) or "panorama" (per group)
    item_id: str    # session id, or "+"-joined session ids of a group
    error_type: str
    message: str


@dataclass
class ReconstructionResult:
    """Everything the pipeline produces for one building."""

    aggregation: AggregationResult
    skeleton: SkeletonResult
    panoramas: List[RoomPanorama]
    layouts: List[RoomLayout]
    floorplan: FloorPlanResult
    timings: Dict[str, float] = field(default_factory=dict)
    anchored: List[AnchoredTrajectory] = field(default_factory=list)
    #: Items quarantined by graceful degradation (empty on a clean run).
    failures: List[StageFailure] = field(default_factory=list)

    @property
    def n_quarantined(self) -> int:
        return len(self.failures)

    def failures_for_stage(self, stage: str) -> List[StageFailure]:
        return [f for f in self.failures if f.stage == stage]

    def layout_for_room(self, room_hint: str) -> Optional[RoomLayout]:
        for pano, layout in zip(self.panoramas, self.layouts):
            if pano.room_hint == room_hint:
                return layout
        return None


class CrowdMapPipeline:
    """Orchestrates the full reconstruction for one building's dataset."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        self.config = config or CrowdMapConfig()
        if self.config.pipeline_on_error not in ("quarantine", "raise"):
            raise ValueError(
                "pipeline_on_error must be 'quarantine' or 'raise', got "
                f"{self.config.pipeline_on_error!r}"
            )
        if self.config.worker_backend not in MAP_BACKENDS:
            raise ValueError(
                f"worker_backend must be one of {MAP_BACKENDS}, got "
                f"{self.config.worker_backend!r}"
            )
        if self.config.worker_transport not in MAP_TRANSPORTS:
            raise ValueError(
                f"worker_transport must be one of {MAP_TRANSPORTS}, got "
                f"{self.config.worker_transport!r}"
            )
        self.telemetry = telemetry or default_registry
        self.comparator = KeyframeComparator(self.config)
        self.aggregator = SequenceAggregator(self.config, self.comparator)
        self.panorama_builder = PanoramaBuilder(self.config)
        self.layout_estimator = RoomLayoutEstimator(self.config)
        self.assembler = FloorPlanAssembler(self.config)

    @property
    def _quarantine(self) -> bool:
        return self.config.pipeline_on_error == "quarantine"

    # ------------------------------------------------------------------
    # Stage 1: pathway
    # ------------------------------------------------------------------

    def anchor_session(self, session: CaptureSession) -> AnchoredTrajectory:
        """Select key-frames for one SWS session and anchor its trajectory."""
        keyframes = select_keyframes(
            session.frames, self.config, session_id=session.session_id
        )
        return AnchoredTrajectory(
            trajectory=session.device_trajectory,
            keyframes=keyframes,
            session_id=session.session_id,
        )

    def build_pathway(
        self, sessions: List[CaptureSession]
    ) -> Tuple[List[AnchoredTrajectory], AggregationResult, SkeletonResult,
               List[StageFailure]]:
        # Stage-level pipelining: as each session's key-frame selection
        # streams back from the worker map, SURF runs on its key-frames
        # (batched by shape) while later sessions are still being
        # selected — so by the time aggregation compares key-frames,
        # their features are already in the cache.
        consume = None
        if self.config.surf_prefetch:
            def consume(index: int, ok: bool, value) -> None:
                if ok and value is not None:
                    prefetch_surf(value.keyframes, self.config)
        if self._quarantine:
            successes, errors = map_with_failures(
                self.anchor_session, sessions,
                max_workers=self.config.n_workers,
                backend=self.config.worker_backend,
                transport=self.config.worker_transport,
                consume=consume,
            )
            anchored = [result for _, result in successes]
            failures = []
            for idx, exc in errors:
                session = sessions[idx]
                failures.append(
                    StageFailure(
                        stage="keyframes",
                        item_id=session.session_id,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                )
                self.telemetry.counter(
                    "sessions_quarantined",
                    "SWS sessions quarantined by graceful degradation",
                ).inc()
        else:
            anchored = map_parallel(
                self.anchor_session, sessions,
                max_workers=self.config.n_workers,
                backend=self.config.worker_backend,
                transport=self.config.worker_transport,
                consume=consume,
            )
            failures = []
        aggregation = self.aggregator.aggregate(anchored)
        if anchored and self.config.drift_calibration_iterations > 0:
            trajectories = calibrate_drift(
                anchored, aggregation,
                iterations=self.config.drift_calibration_iterations,
            )
        else:
            trajectories = aggregation.trajectories
        bounds = _trajectory_bounds(aggregation, margin=2.0)
        skeleton = reconstruct_skeleton(trajectories, bounds, self.config)
        return anchored, aggregation, skeleton, failures

    # ------------------------------------------------------------------
    # Stage 2: rooms
    # ------------------------------------------------------------------

    def _srs_capture_position(self, session: CaptureSession) -> Point:
        """Device-estimated spin position (the SRS trajectory is a point)."""
        traj = session.device_trajectory
        if len(traj) == 0:
            return Point(0.0, 0.0)
        mean_x, mean_y = traj.as_array().mean(axis=0)
        return Point(float(mean_x), float(mean_y))

    def group_srs_sessions(
        self, sessions: List[CaptureSession], cell_size: float = 2.5
    ) -> List[List[CaptureSession]]:
        """Group SRS sessions by the skeleton cell of their capture position.

        The paper generates one panorama per occupancy cell holding
        multiple key-frames; spins performed in the same cell merge into
        one panorama group.
        """
        buckets: Dict[Tuple[int, int], List[CaptureSession]] = defaultdict(list)
        for session in sessions:
            pos = self._srs_capture_position(session)
            key = (int(pos.x // cell_size), int(pos.y // cell_size))
            buckets[key].append(session)
        return [buckets[k] for k in sorted(buckets)]

    def build_room(
        self, group: List[CaptureSession]
    ) -> Optional[Tuple[RoomPanorama, RoomLayout]]:
        """Panorama + layout for one SRS cell group.

        Raises :class:`PanoramaCoverageError` when neither any single
        session nor the pooled fallback can cover the circle; in
        quarantine mode :meth:`build_rooms` turns that into a
        :class:`StageFailure` instead of aborting the building.

        When several users spun in the same cell, each session is stitched
        and fitted on its own and the most surface-consistent layout wins:
        redundant captures provide robustness ("some places were captured
        multiple times"), while fusing different users' frames into one
        panorama would let their independent heading biases fight at the
        seams. A pooled panorama remains the fallback when no single
        session covers the full circle by itself.
        """
        hints = Counter(s.room_name for s in group if s.room_name)
        room_hint = hints.most_common(1)[0][0] if hints else None

        best: Optional[Tuple[RoomPanorama, RoomLayout]] = None
        for session in group:
            try:
                session_keyframes = select_keyframes(
                    session.frames, self.config, session_id=session.session_id
                )
                capture = self._srs_capture_position(session)
                pano = self.panorama_builder.build(
                    session_keyframes, capture_position=capture,
                    room_hint=room_hint,
                )
            except (PanoramaCoverageError, ValueError):
                # A corrupt or under-covering session must not disqualify
                # its healthier cell-mates; the pooled fallback (or the
                # group-level quarantine) handles the all-bad case.
                continue
            layout = self.layout_estimator.estimate(pano)
            if best is None or layout.consistency > best[1].consistency:
                best = (pano, layout)
        if best is not None:
            return best

        # Fallback: pool every session's key-frames into one panorama.
        keyframes: List[KeyFrame] = []
        for session in group:
            try:
                keyframes.extend(
                    select_keyframes(session.frames, self.config,
                                     session_id=session.session_id)
                )
            except ValueError:
                continue
        positions = np.array(
            [[p.x, p.y] for p in (self._srs_capture_position(s) for s in group)]
        )
        mean_x, mean_y = positions.mean(axis=0)
        capture = Point(float(mean_x), float(mean_y))
        pano = self.panorama_builder.build(
            keyframes, capture_position=capture, room_hint=room_hint
        )
        return pano, self.layout_estimator.estimate(pano)

    def build_rooms(
        self, sessions: List[CaptureSession]
    ) -> Tuple[List[RoomPanorama], List[RoomLayout], List[StageFailure]]:
        groups = self.group_srs_sessions(sessions)
        if self._quarantine:
            successes, errors = map_with_failures(
                self.build_room, groups,
                max_workers=self.config.n_workers,
                backend=self.config.worker_backend,
                transport=self.config.worker_transport,
            )
            results = [result for _, result in successes]
            failures = []
            for idx, exc in errors:
                group_id = "+".join(s.session_id for s in groups[idx])
                failures.append(
                    StageFailure(
                        stage="panorama",
                        item_id=group_id,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                )
                self.telemetry.counter(
                    "panorama_groups_quarantined",
                    "SRS panorama groups quarantined by graceful degradation",
                ).inc()
        else:
            results = map_parallel(
                self.build_room, groups,
                max_workers=self.config.n_workers,
                backend=self.config.worker_backend,
                transport=self.config.worker_transport,
            )
            failures = []
        panoramas, layouts = [], []
        for result in results:
            if result is None:
                continue
            pano, layout = result
            panoramas.append(pano)
            layouts.append(layout)
        return panoramas, layouts, failures

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------

    def run(self, dataset: CrowdDataset) -> ReconstructionResult:
        """Reconstruct the floor plan from one building's crowd dataset."""
        return self.run_sessions(dataset.sessions)

    def run_sessions(self, sessions: List[CaptureSession]) -> ReconstructionResult:
        """Reconstruct from a raw session list (split by task internally).

        This is the entry point the backend uses: decoded uploads arrive as
        a flat stream, and multi-floor reconstruction feeds per-floor
        session groups through it.

        Execution is dispatched by the ``CROWDMAP_PLANNER`` env switch:
        ``default`` (and ``aggressive``) build and execute the dataflow
        graph via the installed planner; ``legacy``/``off`` run the
        original fixed cascade in :meth:`run_sessions_legacy`. The
        default planner mode is byte-identical to the cascade — the
        twin-run determinism suite and ``python -m repro.dataflow``
        enforce that.
        """
        mode = planner_mode()
        if mode in ("legacy", "off") or _planner_factory is None:
            return self.run_sessions_legacy(sessions)
        return _planner_factory(self, mode).run_sessions(sessions)

    def run_sessions_legacy(
        self, sessions: List[CaptureSession]
    ) -> ReconstructionResult:
        """The original fixed cascade (pathway → rooms → floor plan)."""
        sws = [s for s in sessions if s.task == "SWS"]
        srs = [s for s in sessions if s.task == "SRS"]
        timings: Dict[str, float] = {}
        failures: List[StageFailure] = []

        t0 = time.perf_counter()
        anchored, aggregation, skeleton, pathway_failures = self.build_pathway(sws)
        failures.extend(pathway_failures)
        timings["pathway"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        panoramas, layouts, room_failures = self.build_rooms(srs)
        failures.extend(room_failures)
        timings["rooms"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        floorplan = self.assembler.arrange(
            skeleton, layouts, names=[p.room_hint for p in panoramas]
        )
        timings["floorplan"] = time.perf_counter() - t0

        return ReconstructionResult(
            aggregation=aggregation,
            skeleton=skeleton,
            panoramas=panoramas,
            layouts=layouts,
            floorplan=floorplan,
            timings=timings,
            anchored=anchored,
            failures=failures,
        )


def _trajectory_bounds(aggregation: AggregationResult, margin: float) -> BoundingBox:
    """Joint bounding box of all aggregated trajectories."""
    arrays = [
        traj.as_array() for traj in aggregation.trajectories if len(traj) > 0
    ]
    if not arrays:
        return BoundingBox(0.0, 0.0, 1.0, 1.0)
    points = np.concatenate(arrays, axis=0)
    min_x, min_y = points.min(axis=0)
    max_x, max_y = points.max(axis=0)
    return BoundingBox(
        float(min_x) - margin, float(min_y) - margin,
        float(max_x) + margin, float(max_y) + margin,
    )
