"""The end-to-end CrowdMap pipeline (cloud-backend cascade).

Mirrors the paper's three backend sub-processes:

1. **Indoor pathway reconstruction** — key-frame selection per SWS
   session, sequence-based trajectory aggregation, occupancy-grid floor
   path skeleton.
2. **Room layout reconstruction** — SRS sessions grouped by skeleton cell,
   panorama stitching per group, rectangular-model fitting per panorama.
3. **Floor plan modeling** — force-directed merge of rooms and skeleton.

The pipeline is deterministic given the dataset and config, parallelizes
its embarrassingly parallel stages through the worker substrate, and
reports per-stage wall-clock timings (the paper's Fig. 7c latency data).
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.workers import map_parallel
from repro.core.aggregation import (
    AggregationResult,
    AnchoredTrajectory,
    SequenceAggregator,
    calibrate_drift,
)
from repro.core.comparison import KeyframeComparator
from repro.core.config import CrowdMapConfig
from repro.core.floorplan import FloorPlanAssembler, FloorPlanResult
from repro.core.keyframes import KeyFrame, select_keyframes
from repro.core.panorama import PanoramaBuilder, PanoramaCoverageError, RoomPanorama
from repro.core.room_layout import RoomLayout, RoomLayoutEstimator
from repro.core.skeleton import SkeletonResult, reconstruct_skeleton
from repro.geometry.primitives import BoundingBox, Point
from repro.world.crowd import CrowdDataset
from repro.world.walker import CaptureSession


@dataclass
class ReconstructionResult:
    """Everything the pipeline produces for one building."""

    aggregation: AggregationResult
    skeleton: SkeletonResult
    panoramas: List[RoomPanorama]
    layouts: List[RoomLayout]
    floorplan: FloorPlanResult
    timings: Dict[str, float] = field(default_factory=dict)
    anchored: List[AnchoredTrajectory] = field(default_factory=list)

    def layout_for_room(self, room_hint: str) -> Optional[RoomLayout]:
        for pano, layout in zip(self.panoramas, self.layouts):
            if pano.room_hint == room_hint:
                return layout
        return None


class CrowdMapPipeline:
    """Orchestrates the full reconstruction for one building's dataset."""

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()
        self.comparator = KeyframeComparator(self.config)
        self.aggregator = SequenceAggregator(self.config, self.comparator)
        self.panorama_builder = PanoramaBuilder(self.config)
        self.layout_estimator = RoomLayoutEstimator(self.config)
        self.assembler = FloorPlanAssembler(self.config)

    # ------------------------------------------------------------------
    # Stage 1: pathway
    # ------------------------------------------------------------------

    def anchor_session(self, session: CaptureSession) -> AnchoredTrajectory:
        """Select key-frames for one SWS session and anchor its trajectory."""
        keyframes = select_keyframes(
            session.frames, self.config, session_id=session.session_id
        )
        return AnchoredTrajectory(
            trajectory=session.device_trajectory,
            keyframes=keyframes,
            session_id=session.session_id,
        )

    def build_pathway(
        self, sessions: List[CaptureSession]
    ) -> Tuple[List[AnchoredTrajectory], AggregationResult, SkeletonResult]:
        anchored = map_parallel(
            self.anchor_session, sessions, max_workers=self.config.n_workers
        )
        aggregation = self.aggregator.aggregate(anchored)
        if self.config.drift_calibration_iterations > 0:
            trajectories = calibrate_drift(
                anchored, aggregation,
                iterations=self.config.drift_calibration_iterations,
            )
        else:
            trajectories = aggregation.trajectories
        bounds = _trajectory_bounds(aggregation, margin=2.0)
        skeleton = reconstruct_skeleton(trajectories, bounds, self.config)
        return anchored, aggregation, skeleton

    # ------------------------------------------------------------------
    # Stage 2: rooms
    # ------------------------------------------------------------------

    def _srs_capture_position(self, session: CaptureSession) -> Point:
        """Device-estimated spin position (the SRS trajectory is a point)."""
        traj = session.device_trajectory
        if len(traj) == 0:
            return Point(0.0, 0.0)
        xs = sum(p.x for p in traj.points) / len(traj)
        ys = sum(p.y for p in traj.points) / len(traj)
        return Point(xs, ys)

    def group_srs_sessions(
        self, sessions: List[CaptureSession], cell_size: float = 2.5
    ) -> List[List[CaptureSession]]:
        """Group SRS sessions by the skeleton cell of their capture position.

        The paper generates one panorama per occupancy cell holding
        multiple key-frames; spins performed in the same cell merge into
        one panorama group.
        """
        buckets: Dict[Tuple[int, int], List[CaptureSession]] = defaultdict(list)
        for session in sessions:
            pos = self._srs_capture_position(session)
            key = (int(pos.x // cell_size), int(pos.y // cell_size))
            buckets[key].append(session)
        return [buckets[k] for k in sorted(buckets)]

    def build_room(
        self, group: List[CaptureSession]
    ) -> Optional[Tuple[RoomPanorama, RoomLayout]]:
        """Panorama + layout for one SRS cell group (None if not stitchable).

        When several users spun in the same cell, each session is stitched
        and fitted on its own and the most surface-consistent layout wins:
        redundant captures provide robustness ("some places were captured
        multiple times"), while fusing different users' frames into one
        panorama would let their independent heading biases fight at the
        seams. A pooled panorama remains the fallback when no single
        session covers the full circle by itself.
        """
        hints = Counter(s.room_name for s in group if s.room_name)
        room_hint = hints.most_common(1)[0][0] if hints else None

        best: Optional[Tuple[RoomPanorama, RoomLayout]] = None
        for session in group:
            session_keyframes = select_keyframes(
                session.frames, self.config, session_id=session.session_id
            )
            capture = self._srs_capture_position(session)
            try:
                pano = self.panorama_builder.build(
                    session_keyframes, capture_position=capture,
                    room_hint=room_hint,
                )
            except PanoramaCoverageError:
                continue
            layout = self.layout_estimator.estimate(pano)
            if best is None or layout.consistency > best[1].consistency:
                best = (pano, layout)
        if best is not None:
            return best

        # Fallback: pool every session's key-frames into one panorama.
        keyframes: List[KeyFrame] = []
        for session in group:
            keyframes.extend(
                select_keyframes(session.frames, self.config,
                                 session_id=session.session_id)
            )
        positions = [self._srs_capture_position(s) for s in group]
        capture = Point(
            sum(p.x for p in positions) / len(positions),
            sum(p.y for p in positions) / len(positions),
        )
        try:
            pano = self.panorama_builder.build(
                keyframes, capture_position=capture, room_hint=room_hint
            )
        except PanoramaCoverageError:
            return None
        return pano, self.layout_estimator.estimate(pano)

    def build_rooms(
        self, sessions: List[CaptureSession]
    ) -> Tuple[List[RoomPanorama], List[RoomLayout]]:
        groups = self.group_srs_sessions(sessions)
        results = map_parallel(
            self.build_room, groups, max_workers=self.config.n_workers
        )
        panoramas, layouts = [], []
        for result in results:
            if result is None:
                continue
            pano, layout = result
            panoramas.append(pano)
            layouts.append(layout)
        return panoramas, layouts

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------

    def run(self, dataset: CrowdDataset) -> ReconstructionResult:
        """Reconstruct the floor plan from one building's crowd dataset."""
        return self.run_sessions(dataset.sessions)

    def run_sessions(self, sessions: List[CaptureSession]) -> ReconstructionResult:
        """Reconstruct from a raw session list (split by task internally).

        This is the entry point the backend uses: decoded uploads arrive as
        a flat stream, and multi-floor reconstruction feeds per-floor
        session groups through it.
        """
        sws = [s for s in sessions if s.task == "SWS"]
        srs = [s for s in sessions if s.task == "SRS"]
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        anchored, aggregation, skeleton = self.build_pathway(sws)
        timings["pathway"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        panoramas, layouts = self.build_rooms(srs)
        timings["rooms"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        floorplan = self.assembler.arrange(
            skeleton, layouts, names=[p.room_hint for p in panoramas]
        )
        timings["floorplan"] = time.perf_counter() - t0

        return ReconstructionResult(
            aggregation=aggregation,
            skeleton=skeleton,
            panoramas=panoramas,
            layouts=layouts,
            floorplan=floorplan,
            timings=timings,
            anchored=anchored,
        )


def _trajectory_bounds(aggregation: AggregationResult, margin: float) -> BoundingBox:
    """Joint bounding box of all aggregated trajectories."""
    xs: List[float] = []
    ys: List[float] = []
    for traj in aggregation.trajectories:
        for p in traj.points:
            xs.append(p.x)
            ys.append(p.y)
    if not xs:
        return BoundingBox(0.0, 0.0, 1.0, 1.0)
    return BoundingBox(
        min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin
    )
