"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``        build a building, simulate a crowd, reconstruct, print
                  the ASCII floor plan and quality metrics;
- ``generate``    simulate a crowd dataset and save it to a .npz bundle;
- ``reconstruct`` load a saved dataset, run the pipeline, report metrics;
- ``buildings``   list the available procedural buildings.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _add_demo(subparsers) -> None:
    p = subparsers.add_parser("demo", help="end-to-end demo on one building")
    p.add_argument("--building", default="Lab1",
                   choices=["Lab1", "Lab2", "Gym", "Office"])
    p.add_argument("--users", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--layout-samples", type=int, default=2000)


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser("generate", help="simulate and save a dataset")
    p.add_argument("output", help="path of the .npz bundle to write")
    p.add_argument("--building", default="Lab1",
                   choices=["Lab1", "Lab2", "Gym", "Office"])
    p.add_argument("--users", type=int, default=5)
    p.add_argument("--sws-per-user", type=int, default=3)
    p.add_argument("--srs-per-user", type=int, default=2)
    p.add_argument("--night-fraction", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)


def _add_reconstruct(subparsers) -> None:
    p = subparsers.add_parser("reconstruct",
                              help="run the pipeline on a saved dataset")
    p.add_argument("dataset", help="path of a .npz bundle from 'generate'")
    p.add_argument("--layout-samples", type=int, default=2000)


def _add_buildings(subparsers) -> None:
    subparsers.add_parser("buildings", help="list procedural buildings")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrowdMap: indoor floor plans from crowdsourced "
                    "sensor-rich videos (ICDCS 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_demo(subparsers)
    _add_generate(subparsers)
    _add_reconstruct(subparsers)
    _add_buildings(subparsers)
    return parser


def _report(result, plan) -> None:
    from repro.eval import evaluate_hallway_shape, evaluate_rooms
    from repro.eval.report import render_table

    print("\nReconstructed floor plan ('#' hallway, letters rooms):\n")
    print(result.floorplan.render_ascii(max_width=90))
    hallway = evaluate_hallway_shape(result.skeleton, plan)
    rooms = evaluate_rooms(
        result.layouts, [p.room_hint for p in result.panoramas], plan,
        result.floorplan,
    )
    print()
    print(
        render_table(
            "Quality vs ground truth",
            ["metric", "value"],
            [
                ["hallway precision", f"{hallway.precision:.1%}"],
                ["hallway recall", f"{hallway.recall:.1%}"],
                ["hallway F-measure", f"{hallway.f_measure:.1%}"],
                ["rooms reconstructed", len(result.layouts)],
                ["mean room area error", f"{rooms.mean_area_error():.1%}"],
                ["mean aspect ratio error",
                 f"{rooms.mean_aspect_ratio_error():.1%}"],
                ["mean room location error",
                 f"{rooms.mean_location_error():.2f} m"],
            ],
        )
    )


def cmd_demo(args) -> int:
    from repro.core import CrowdMapConfig, CrowdMapPipeline
    from repro.world import CrowdConfig, generate_crowd_dataset
    from repro.world.buildings import BUILDING_BUILDERS

    plan = BUILDING_BUILDERS[args.building]()
    print(f"Simulating {args.users} users in {plan.name} ...")
    t0 = time.perf_counter()
    dataset = generate_crowd_dataset(
        plan, CrowdConfig(n_users=args.users, seed=args.seed)
    )
    print(f"  {len(dataset.sessions)} sessions, {dataset.total_frames()} "
          f"frames ({time.perf_counter() - t0:.1f} s)")
    config = CrowdMapConfig().with_overrides(layout_samples=args.layout_samples)
    print("Reconstructing ...")
    result = CrowdMapPipeline(config).run(dataset)
    _report(result, plan)
    return 0


def cmd_generate(args) -> int:
    from repro.world import CrowdConfig, generate_crowd_dataset
    from repro.world.buildings import BUILDING_BUILDERS
    from repro.world.dataset_io import save_dataset

    plan = BUILDING_BUILDERS[args.building]()
    print(f"Simulating {args.users} users in {plan.name} ...")
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(
            n_users=args.users,
            sws_per_user=args.sws_per_user,
            srs_rooms_per_user=args.srs_per_user,
            night_fraction=args.night_fraction,
            seed=args.seed,
        ),
    )
    save_dataset(dataset, args.output)
    print(f"Wrote {len(dataset.sessions)} sessions "
          f"({dataset.total_frames()} frames) to {args.output}")
    return 0


def cmd_reconstruct(args) -> int:
    from repro.core import CrowdMapConfig, CrowdMapPipeline
    from repro.world.dataset_io import load_dataset

    print(f"Loading {args.dataset} ...")
    dataset = load_dataset(args.dataset)
    config = CrowdMapConfig().with_overrides(layout_samples=args.layout_samples)
    print(f"Reconstructing {dataset.building} from "
          f"{len(dataset.sessions)} sessions ...")
    result = CrowdMapPipeline(config).run(dataset)
    _report(result, dataset.plan)
    return 0


def cmd_buildings(_args) -> int:
    from repro.world.buildings import BUILDING_BUILDERS

    for name, builder in BUILDING_BUILDERS.items():
        plan = builder()
        print(
            f"{name}: {plan.bounds.width:.0f} x {plan.bounds.height:.0f} m, "
            f"{len(plan.rooms)} rooms, {len(plan.walls)} wall faces"
        )
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "generate": cmd_generate,
    "reconstruct": cmd_reconstruct,
    "buildings": cmd_buildings,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
