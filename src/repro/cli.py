"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``        build a building, simulate a crowd, reconstruct, print
                  the ASCII floor plan and quality metrics;
- ``generate``    simulate a crowd dataset and save it to a .npz bundle;
- ``reconstruct`` load a saved dataset, run the pipeline, report metrics;
- ``buildings``   list the available procedural buildings;
- ``serve-sim``   build shards from simulated crowds, then drive seeded
                  open-loop traffic through the serving layer and print
                  the SLO report (deterministic per seed);
- ``planner-check`` run the same smoke crowd through the legacy cascade
                  and the dataflow planner (default mode) and fail
                  unless every artifact is byte-identical;
- ``fleet-sim``   slice a multi-building crowd across N simulated ingest
                  nodes, gossip evidence summaries over fault-injected
                  links, and print the deterministic convergence report
                  (rounds-to-converge, bytes gossiped, per-node
                  divergence; byte-equal across same-seed runs).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _add_demo(subparsers) -> None:
    p = subparsers.add_parser("demo", help="end-to-end demo on one building")
    p.add_argument("--building", default="Lab1",
                   choices=["Lab1", "Lab2", "Gym", "Office"])
    p.add_argument("--users", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--layout-samples", type=int, default=2000)


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser("generate", help="simulate and save a dataset")
    p.add_argument("output", help="path of the .npz bundle to write")
    p.add_argument("--building", default="Lab1",
                   choices=["Lab1", "Lab2", "Gym", "Office"])
    p.add_argument("--users", type=int, default=5)
    p.add_argument("--sws-per-user", type=int, default=3)
    p.add_argument("--srs-per-user", type=int, default=2)
    p.add_argument("--night-fraction", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)


def _add_reconstruct(subparsers) -> None:
    p = subparsers.add_parser("reconstruct",
                              help="run the pipeline on a saved dataset")
    p.add_argument("dataset", help="path of a .npz bundle from 'generate'")
    p.add_argument("--layout-samples", type=int, default=2000)


def _add_buildings(subparsers) -> None:
    subparsers.add_parser("buildings", help="list procedural buildings")


def _add_serve_sim(subparsers) -> None:
    p = subparsers.add_parser(
        "serve-sim",
        help="simulate the sharded map-serving layer under seeded load",
    )
    p.add_argument("--building", action="append", default=None,
                   choices=["Lab1", "Lab2", "Gym", "Office"],
                   help="shard source building (repeatable; default: Lab1)")
    p.add_argument("--users", type=int, default=2,
                   help="simulated crowd size per building (default 2)")
    p.add_argument("--layout-samples", type=int, default=300)
    p.add_argument("--seed", type=int, default=0,
                   help="seeds the crowd, the traffic and the router")
    p.add_argument("--duration", type=float, default=30.0,
                   help="virtual seconds of traffic (default 30)")
    p.add_argument("--qps", type=float, default=50.0,
                   help="mean Poisson arrival rate (default 50)")
    p.add_argument("--replicas", type=int, default=2,
                   help="serving replicas per shard (default 2)")
    p.add_argument("--queue-capacity", type=int, default=32,
                   help="per-shard admission queue bound (default 32)")
    p.add_argument("--slo-p99", type=float, default=1.0,
                   help="p99 latency target in virtual seconds (default 1.0)")
    p.add_argument("--refresh-interval", type=float, default=5.0,
                   help="scheduler refresh-and-publish period (default 5)")
    p.add_argument("--stub", action="store_true",
                   help="skip reconstruction; serve stub snapshots "
                        "(routing/SLO smoke mode)")
    p.add_argument("--execute", choices=["model", "real"], default="model",
                   help="'real' also runs each admitted query's handler")


def _add_planner_check(subparsers) -> None:
    p = subparsers.add_parser(
        "planner-check",
        help="verify the dataflow planner's default mode is "
             "byte-identical to the legacy cascade",
    )
    p.add_argument("--building", default="Lab1",
                   choices=["Lab1", "Lab2", "Gym", "Office"])
    p.add_argument("--users", type=int, default=2,
                   help="smoke crowd size (default 2)")
    p.add_argument("--seed", type=int, default=11)


def _add_fleet_sim(subparsers) -> None:
    p = subparsers.add_parser(
        "fleet-sim",
        help="simulate N ingest nodes gossiping map evidence to convergence",
    )
    p.add_argument("--building", action="append", default=None,
                   choices=["Lab1", "Lab2", "Gym", "Office"],
                   help="crowd source building (repeatable; "
                        "default: Lab1 + Lab2)")
    p.add_argument("--nodes", type=int, default=4,
                   help="simulated ingest nodes (default 4)")
    p.add_argument("--users", type=int, default=3,
                   help="crowd size per building (default 3)")
    p.add_argument("--overlap", type=float, default=0.25,
                   help="probability a session is seen by a second node "
                        "(default 0.25)")
    p.add_argument("--seed", type=int, default=0,
                   help="seeds the crowd, the slicing, the mesh and "
                        "the links")
    p.add_argument("--max-rounds", type=int, default=64,
                   help="gossip round budget (default 64)")
    p.add_argument("--fanout", type=int, default=1,
                   help="peers pushed to per node per round (default 1)")
    p.add_argument("--loss", type=float, default=0.0,
                   help="per-message link loss rate (default 0)")
    p.add_argument("--latency", type=float, default=0.05,
                   help="base one-way link latency, virtual s (default 0.05)")
    p.add_argument("--jitter", type=float, default=0.02,
                   help="uniform latency jitter, virtual s (default 0.02)")
    p.add_argument("--partition", action="append", default=None,
                   metavar="START:END:G0|G1",
                   help="partition window, e.g. '2:6:0,1|2,3' splits node "
                        "indices {0,1} from {2,3} during rounds 2-6 "
                        "(repeatable)")
    p.add_argument("--local-maps", action="store_true",
                   help="also run a private ShardManager serving stack "
                        "per node")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the full report as canonical JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrowdMap: indoor floor plans from crowdsourced "
                    "sensor-rich videos (ICDCS 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_demo(subparsers)
    _add_generate(subparsers)
    _add_reconstruct(subparsers)
    _add_buildings(subparsers)
    _add_serve_sim(subparsers)
    _add_planner_check(subparsers)
    _add_fleet_sim(subparsers)
    return parser


def _report(result, plan) -> None:
    from repro.eval import evaluate_hallway_shape, evaluate_rooms
    from repro.eval.report import render_table

    print("\nReconstructed floor plan ('#' hallway, letters rooms):\n")
    print(result.floorplan.render_ascii(max_width=90))
    hallway = evaluate_hallway_shape(result.skeleton, plan)
    rooms = evaluate_rooms(
        result.layouts, [p.room_hint for p in result.panoramas], plan,
        result.floorplan,
    )
    print()
    print(
        render_table(
            "Quality vs ground truth",
            ["metric", "value"],
            [
                ["hallway precision", f"{hallway.precision:.1%}"],
                ["hallway recall", f"{hallway.recall:.1%}"],
                ["hallway F-measure", f"{hallway.f_measure:.1%}"],
                ["rooms reconstructed", len(result.layouts)],
                ["mean room area error", f"{rooms.mean_area_error():.1%}"],
                ["mean aspect ratio error",
                 f"{rooms.mean_aspect_ratio_error():.1%}"],
                ["mean room location error",
                 f"{rooms.mean_location_error():.2f} m"],
            ],
        )
    )


def cmd_demo(args) -> int:
    from repro.core import CrowdMapConfig, CrowdMapPipeline
    from repro.world import CrowdConfig, generate_crowd_dataset
    from repro.world.buildings import BUILDING_BUILDERS

    plan = BUILDING_BUILDERS[args.building]()
    print(f"Simulating {args.users} users in {plan.name} ...")
    t0 = time.perf_counter()
    dataset = generate_crowd_dataset(
        plan, CrowdConfig(n_users=args.users, seed=args.seed)
    )
    print(f"  {len(dataset.sessions)} sessions, {dataset.total_frames()} "
          f"frames ({time.perf_counter() - t0:.1f} s)")
    config = CrowdMapConfig().with_overrides(layout_samples=args.layout_samples)
    print("Reconstructing ...")
    result = CrowdMapPipeline(config).run(dataset)
    _report(result, plan)
    return 0


def cmd_generate(args) -> int:
    from repro.world import CrowdConfig, generate_crowd_dataset
    from repro.world.buildings import BUILDING_BUILDERS
    from repro.world.dataset_io import save_dataset

    plan = BUILDING_BUILDERS[args.building]()
    print(f"Simulating {args.users} users in {plan.name} ...")
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(
            n_users=args.users,
            sws_per_user=args.sws_per_user,
            srs_rooms_per_user=args.srs_per_user,
            night_fraction=args.night_fraction,
            seed=args.seed,
        ),
    )
    save_dataset(dataset, args.output)
    print(f"Wrote {len(dataset.sessions)} sessions "
          f"({dataset.total_frames()} frames) to {args.output}")
    return 0


def cmd_reconstruct(args) -> int:
    from repro.core import CrowdMapConfig, CrowdMapPipeline
    from repro.world.dataset_io import load_dataset

    print(f"Loading {args.dataset} ...")
    dataset = load_dataset(args.dataset)
    config = CrowdMapConfig().with_overrides(layout_samples=args.layout_samples)
    print(f"Reconstructing {dataset.building} from "
          f"{len(dataset.sessions)} sessions ...")
    result = CrowdMapPipeline(config).run(dataset)
    _report(result, dataset.plan)
    return 0


def _real_payload_factory(manager, frames_by_key):
    """Seeded real-query payloads: frames to locate, rooms to route to."""
    import numpy as np

    from repro.geometry.primitives import Point
    from repro.serving import LocateQuery, RouteQuery

    rooms = {}
    starts = {}
    for shard in manager.shards():
        result = shard.current().result
        rooms[shard.key] = [r.name for r in result.floorplan.rooms if r.name]
        sk = result.skeleton
        rr, cc = np.nonzero(sk.skeleton)
        starts[shard.key] = [
            Point(sk.bounds.min_x + (c + 0.5) * sk.cell_size,
                  sk.bounds.min_y + (r + 0.5) * sk.cell_size)
            for r, c in zip(rr.tolist()[::7], cc.tolist()[::7])
        ]
        if not rooms[shard.key] or not starts[shard.key]:
            raise SystemExit(
                f"shard {shard.key.building}/{shard.key.floor} reconstructed "
                "no rooms/skeleton to query; increase --users"
            )

    def payload_for(kind, key, rng):
        if kind == "locate":
            frames = frames_by_key[key]
            return LocateQuery(frame=frames[int(rng.integers(len(frames)))])
        if kind == "route":
            return RouteQuery(
                start=starts[key][int(rng.integers(len(starts[key])))],
                room_name=rooms[key][int(rng.integers(len(rooms[key])))],
            )
        return None

    return payload_for


def cmd_serve_sim(args) -> int:
    from repro.backend.scheduler import SimulatedScheduler
    from repro.core import CrowdMapConfig
    from repro.serving import (
        LoadProfile,
        ServingConfig,
        ShardManager,
        render_report,
        run_serving_simulation,
    )

    if args.stub and args.execute == "real":
        print("--stub serves no reconstructions, so --execute real has "
              "nothing to run handlers against", file=sys.stderr)
        return 2
    buildings = args.building or ["Lab1"]
    config = CrowdMapConfig().with_overrides(layout_samples=args.layout_samples)
    manager = ShardManager(config=config, n_replicas=args.replicas)
    scheduler = SimulatedScheduler()
    extra_events = []
    frames_by_key = {}
    payload_for = None

    if args.stub:
        for name in buildings:
            manager.shard_for(name, 1).publish_stub(0.0)
        print(f"serving {len(buildings)} stub shard(s) (no reconstruction)")
    else:
        from repro.world import CrowdConfig, generate_crowd_dataset
        from repro.world.buildings import BUILDING_BUILDERS

        for name in buildings:
            plan = BUILDING_BUILDERS[name]()
            print(f"Simulating {args.users} users in {plan.name} ...")
            dataset = generate_crowd_dataset(
                plan, CrowdConfig(n_users=args.users, seed=args.seed)
            )
            sessions = [
                s for s in dataset.sessions if s.task in ("SWS", "SRS")
            ]
            # Hold the last session back and land it mid-traffic: the
            # scheduler's refresh job publishes the next version while
            # requests are in flight (versioned serving, live).
            held_back = sessions[-1] if len(sessions) > 1 else None
            ingested = sessions[:-1] if held_back else sessions
            for session in ingested:
                manager.ingest_session(session)
            shard = manager.shard_for(
                sessions[0].building, sessions[0].floor
            )
            frames_by_key[shard.key] = [
                frame
                for session in ingested if session.task == "SWS"
                for frame in session.frames[::5]
            ]
            print(f"  shard {shard.key.building}/{shard.key.floor}: "
                  f"{shard.sessions_ingested} sessions")
            if held_back is not None:
                extra_events.append(
                    (args.duration / 2.0,
                     lambda s=held_back: manager.ingest_session(s))
                )
        print("Publishing initial snapshots ...")
        manager.refresh_all(0.0)
        if args.execute == "real":
            payload_for = _real_payload_factory(manager, frames_by_key)

    manager.attach_refresh_job(scheduler, args.refresh_interval)
    profile = LoadProfile(
        duration=args.duration, qps=args.qps, seed=args.seed
    )
    serving = ServingConfig(
        queue_capacity=args.queue_capacity,
        slo_p99=args.slo_p99,
        seed=args.seed,
    )
    print(f"Driving ~{args.qps:g} qps for {args.duration:g} virtual seconds "
          f"across {len(manager.keys())} shard(s) ...")
    report = run_serving_simulation(
        manager,
        config=serving,
        profile=profile,
        scheduler=scheduler,
        scheduler_tick=min(1.0, args.refresh_interval),
        execute=args.execute,
        extra_events=extra_events,
        payload_for=payload_for,
    )
    print(render_report(report))
    verdict = "met" if report["slo"]["met"] else "VIOLATED"
    print(f"\nSLO p99 <= {report['slo']['p99_target']:g}s: {verdict} "
          f"(observed {report['slo']['p99_observed']:g}s, "
          f"shed rate {report['requests']['shed_rate']:.1%})")
    return 0


def cmd_buildings(_args) -> int:
    from repro.world.buildings import BUILDING_BUILDERS

    for name, builder in BUILDING_BUILDERS.items():
        plan = builder()
        print(
            f"{name}: {plan.bounds.width:.0f} x {plan.bounds.height:.0f} m, "
            f"{len(plan.rooms)} rooms, {len(plan.walls)} wall faces"
        )
    return 0


def cmd_planner_check(args) -> int:
    import os

    from repro.backend.cache import ResultCache, set_cache
    from repro.core import CrowdMapConfig, CrowdMapPipeline
    from repro.dataflow.identity import diff_reconstruction
    from repro.world import CrowdConfig, generate_crowd_dataset
    from repro.world.buildings import BUILDING_BUILDERS

    plan = BUILDING_BUILDERS[args.building]()
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(n_users=args.users, sws_per_user=1,
                    srs_rooms_per_user=1, seed=args.seed),
    )
    print(f"planner-check: {len(dataset.sessions)} sessions in {plan.name}, "
          f"seed {args.seed}")

    # Each run gets a fresh in-memory cache: the comparison must measure
    # the planner's execution, not cache hits left by the reference run.
    previous = os.environ.get("CROWDMAP_PLANNER")
    try:
        os.environ["CROWDMAP_PLANNER"] = "legacy"
        set_cache(ResultCache(mode="memory"))
        reference = CrowdMapPipeline(CrowdMapConfig()).run(dataset)
        os.environ["CROWDMAP_PLANNER"] = "default"
        set_cache(ResultCache(mode="memory"))
        planned = CrowdMapPipeline(CrowdMapConfig()).run(dataset)
    finally:
        if previous is None:
            os.environ.pop("CROWDMAP_PLANNER", None)
        else:
            os.environ["CROWDMAP_PLANNER"] = previous
        set_cache(None)

    mismatches = diff_reconstruction(reference, planned)
    if mismatches:
        print(f"planner-check: FAILED, {len(mismatches)} artifact "
              "mismatch(es) between cascade and planner:", file=sys.stderr)
        for line in mismatches:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("planner-check: planner default mode is byte-identical to the "
          "legacy cascade")
    return 0


def _parse_partition(value: str, n_nodes: int):
    """Parse ``START:END:0,1|2,3`` into a node-id Partition."""
    from repro.backend.faults import Partition

    parts = value.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"partition {value!r} must look like START:END:G0|G1"
        )
    start, end = float(parts[0]), float(parts[1])
    groups = []
    for group in parts[2].split("|"):
        indices = [int(idx) for idx in group.split(",") if idx != ""]
        bad = [idx for idx in indices if not 0 <= idx < n_nodes]
        if bad:
            raise ValueError(
                f"partition {value!r} names node index {bad[0]} but the "
                f"fleet has {n_nodes} nodes"
            )
        groups.append(tuple(f"node{idx:02d}" for idx in indices))
    return Partition(start=start, end=end, groups=tuple(groups))


def cmd_fleet_sim(args) -> int:
    from repro.fleet import (
        FleetSimConfig,
        render_fleet_report,
        report_json,
        run_fleet_simulation,
    )

    buildings = tuple(args.building or ["Lab1", "Lab2"])
    try:
        partitions = tuple(
            _parse_partition(value, args.nodes)
            for value in (args.partition or [])
        )
    except ValueError as exc:
        print(f"fleet-sim: {exc}", file=sys.stderr)
        return 2
    config = FleetSimConfig(
        buildings=buildings,
        n_nodes=args.nodes,
        users_per_building=args.users,
        overlap=args.overlap,
        seed=args.seed,
        max_rounds=args.max_rounds,
        fanout=args.fanout,
        loss_rate=args.loss,
        base_latency=args.latency,
        latency_jitter=args.jitter,
        partitions=partitions,
        maintain_local_maps=args.local_maps,
    )
    report = run_fleet_simulation(config, log=print)
    print()
    print(render_fleet_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report_json(report))
        print(f"\nreport JSON written to {args.json}")
    if not report["converged"]:
        return 1
    problems = [
        problem
        for entry in report["equivalence"].values()
        for problem in entry["problems"]
    ]
    if problems:
        for problem in problems:
            print(f"fleet-sim: {problem}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "generate": cmd_generate,
    "reconstruct": cmd_reconstruct,
    "buildings": cmd_buildings,
    "serve-sim": cmd_serve_sim,
    "planner-check": cmd_planner_check,
    "fleet-sim": cmd_fleet_sim,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
