"""Baseline suppression file for crowdlint.

New rules should land at **error** severity without demanding a big-bang
cleanup of every pre-existing violation. The baseline file
(``.crowdlint-baseline.json``, committed at the repo root) records known
findings that are accepted *with a written reason*; the CLI subtracts
matching findings at output time, so baselined debt neither fails the
build nor pollutes reports, while anything *new* still gates.

Matching is deliberately coarse — ``(rule, path, optional message
substring)`` rather than line numbers — so unrelated edits that shift
lines do not invalidate entries, and one entry can cover a file's whole
class of accepted debt (e.g. every CM010 edge out of
``core/keyframes.py``).

Every entry must carry a non-empty ``reason``; a reasonless entry is a
configuration error (mirroring the CM000 rule for inline pragmas). The
CLI warns about entries that matched nothing — stale debt records should
be deleted as the code heals.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding

BASELINE_SCHEMA = "crowdlint-baseline/1"

#: File name auto-discovered upward from the invocation directory.
BASELINE_FILENAME = ".crowdlint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or violates its contract."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted class of findings.

    ``path`` uses forward slashes, is repo-relative, and matches the
    finding's reported path either exactly or as a ``/``-boundary suffix
    — so ``src/repro/core/pipeline.py`` covers both a repo-root
    invocation and an absolute-path one. ``contains``, when non-empty,
    additionally requires the substring to appear in the message.
    """

    rule: str
    path: str
    contains: str = ""
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        found_path = finding.path.replace("\\", "/")
        if found_path != self.path and not found_path.endswith("/" + self.path):
            return False
        return self.contains in finding.message if self.contains else True


def load_baseline(path: str) -> List[BaselineEntry]:
    """Parse a baseline file, enforcing schema and mandatory reasons."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} must be an object with schema={BASELINE_SCHEMA!r}"
        )
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path} is missing its 'entries' list")
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline {path} entry {index} is not an object")
        try:
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                contains=str(raw.get("contains", "")),
                reason=str(raw.get("reason", "")),
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path} entry {index} is missing {exc}"
            ) from exc
        reason = entry.reason.strip()
        if not reason or reason.startswith("TODO"):
            raise BaselineError(
                f"baseline {path} entry {index} ({entry.rule} {entry.path}) "
                "has no reason — every accepted finding must say why"
            )
        entries.append(entry)
    return entries


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write the given findings as a fresh baseline; returns entry count.

    Findings collapse to one entry per ``(rule, path)`` with a
    placeholder reason the author must replace — a freshly generated
    baseline intentionally fails :func:`load_baseline` until each entry
    is justified.
    """
    grouped: Dict[Tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.rule, finding.path.replace("\\", "/"))
        grouped[key] = grouped.get(key, 0) + 1
    entries = [
        {
            "rule": rule,
            "path": file_path,
            "contains": "",
            "reason": f"TODO: justify ({count} finding(s) at generation time)",
        }
        for (rule, file_path), count in sorted(grouped.items())
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"schema": BASELINE_SCHEMA, "entries": entries}, fh, indent=2
        )
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], int, List[BaselineEntry]]:
    """Subtract baselined findings.

    Returns ``(kept findings, suppressed count, entries that matched
    nothing)`` — the last so the CLI can nag about stale entries.
    """
    used = [False] * len(entries)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(finding):
                used[index] = True
                matched = True
        if matched:
            suppressed += 1
        else:
            kept.append(finding)
    unused = [entry for entry, flag in zip(entries, used) if not flag]
    return kept, suppressed, unused


def find_baseline(start_dir: str = ".") -> Optional[str]:
    """Nearest ``.crowdlint-baseline.json`` at or above ``start_dir``."""
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, BASELINE_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent
