"""Incremental crowdlint driver: digest-keyed per-file finding cache.

Parsing ~100 modules dominates a lint run's cost, so the CLI caches each
file's findings in ``.crowdlint_cache.json`` keyed on the sha1 of its
source plus the rule-set version (:data:`repro.analysis.rules.RULES_VERSION`
combined with the selected rule ids). A fully warm run — every digest
matches and the project fingerprint is unchanged — parses nothing and
replays the stored findings byte-for-byte.

Soundness model:

- **Per-file rules** (CM001-CM008) see one file only, so a cached result
  is valid exactly while that file's digest matches. Pragma edits change
  the source, hence the digest, hence invalidate.
- **Project rules** (CM010-CM012) see the whole program; their findings
  are stored per file but validated against a *project digest* — a
  fingerprint (via :func:`repro.backend.cache.value_fingerprint`) over
  every file's path+sha1 and the rule-set version. Any file change, add
  or delete re-runs the project pass for all files.
- The **baseline** suppression file is applied at output time by the CLI,
  never baked into the cache, so editing the baseline needs no
  invalidation.

Cache corruption (truncated writes, schema drift, hand edits) is never an
error: any unreadable cache is treated as empty and rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    _iter_python_files,
    _syntax_error_finding,
    check_module,
)
from repro.analysis.rules import ALL_RULES, RULES_VERSION
from repro.backend.cache import value_fingerprint

#: Cache file schema tag; bump when the JSON layout changes shape.
CACHE_SCHEMA = "crowdlint-cache/1"

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_PATH = ".crowdlint_cache.json"


@dataclass
class CacheStats:
    """What the incremental run reused, reported on stderr by the CLI."""

    files: int = 0
    hits: int = 0
    misses: int = 0
    project_reused: bool = False

    def describe(self) -> str:
        mode = "reused" if self.project_reused else "recomputed"
        return (
            f"crowdlint cache: {self.hits}/{self.files} file(s) hit, "
            f"{self.misses} miss(es), project graph {mode}"
        )


def _source_digest(source: str) -> str:
    return hashlib.sha1(source.encode("utf-8")).hexdigest()


def _effective_rules_version(rules: Sequence[Rule]) -> str:
    """Rule-set version string the cache is keyed on.

    Combines the global :data:`RULES_VERSION` with the ids actually
    selected, so ``--select CM004`` runs never poison (or reuse) the
    full-rule-set cache.
    """
    ids = ",".join(sorted(r.rule_id for r in rules))
    return f"{RULES_VERSION}:{ids}"


def _finding_to_dict(finding: Finding) -> dict:
    return asdict(finding)


def _finding_from_dict(raw: dict) -> Finding:
    return Finding(
        rule=str(raw["rule"]),
        path=str(raw["path"]),
        line=int(raw["line"]),
        col=int(raw["col"]),
        message=str(raw["message"]),
        severity=str(raw.get("severity", "error")),
        end_line=int(raw.get("end_line", 0)),
    )


def load_cache(cache_path: str, rules_version: str) -> Optional[dict]:
    """Read a cache file; None when absent, unreadable, or version-stale."""
    try:
        with open(cache_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("schema") != CACHE_SCHEMA:
        return None
    if data.get("rules_version") != rules_version:
        return None
    if not isinstance(data.get("files"), dict):
        return None
    return data


def write_cache(cache_path: str, data: dict) -> None:
    """Atomically persist the cache (best effort — failures are ignored)."""
    tmp_path = f"{cache_path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_path, cache_path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def cached_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    cache_path: str = DEFAULT_CACHE_PATH,
    use_cache: bool = True,
) -> Tuple[List[Finding], CacheStats]:
    """Lint ``paths`` reusing (and refreshing) the per-file finding cache.

    Returns the same findings :func:`repro.analysis.engine.lint_paths`
    would, in the same order — cold and warm runs are byte-identical —
    plus the :class:`CacheStats` describing what was reused.
    """
    if rules is None:
        rules = list(ALL_RULES)
    rules_version = _effective_rules_version(rules)
    stats = CacheStats()

    sources: List[Tuple[str, str, str]] = []  # (path, source, sha1)
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        sources.append((str(file_path), source, _source_digest(source)))
    stats.files = len(sources)

    project_digest = value_fingerprint(
        rules_version, *[(path, digest) for path, _, digest in sources]
    )

    cache = load_cache(cache_path, rules_version) if use_cache else None
    cached_files: Dict[str, dict] = cache["files"] if cache else {}

    def entry_hit(path: str, digest: str) -> bool:
        entry = cached_files.get(path)
        return bool(entry) and entry.get("digest") == digest

    all_hit = bool(sources) and all(
        entry_hit(path, digest) for path, _, digest in sources
    )
    project_reused = (
        cache is not None
        and cache.get("project_digest") == project_digest
        and all_hit
    )

    findings: List[Finding] = []
    new_files: Dict[str, dict] = {}

    if project_reused:
        # Fully warm: replay stored findings without parsing anything.
        stats.hits = len(sources)
        stats.project_reused = True
        for path, _, digest in sources:
            entry = cached_files[path]
            new_files[path] = entry
            for raw in entry.get("findings", []) + entry.get("project_findings", []):
                findings.append(_finding_from_dict(raw))
    else:
        local_rules = [r for r in rules if not isinstance(r, ProjectRule)]
        project_rules = [r for r in rules if isinstance(r, ProjectRule)]
        contexts: List[Tuple[ModuleContext, str, bool]] = []
        for path, source, digest in sources:
            hit = entry_hit(path, digest)
            stats.hits += 1 if hit else 0
            stats.misses += 0 if hit else 1
            try:
                ctx = ModuleContext(path, source)
            except SyntaxError as exc:
                bad = _syntax_error_finding(path, exc)
                findings.append(bad)
                new_files[path] = {
                    "digest": digest,
                    "findings": [_finding_to_dict(bad)],
                    "project_findings": [],
                }
                continue
            contexts.append((ctx, digest, hit))

        from repro.analysis.project import ProjectContext

        project = ProjectContext.from_contexts([c for c, _, _ in contexts])
        for ctx, digest, hit in contexts:
            if hit:
                local = [
                    _finding_from_dict(raw)
                    for raw in cached_files[ctx.path].get("findings", [])
                ]
            else:
                local = check_module(ctx, local_rules, project=project)
            # check_module() reports malformed pragmas (CM000) on every
            # call; the local pass already carries them, so drop the
            # duplicates from the project pass.
            proj = [
                f
                for f in (
                    check_module(ctx, project_rules, project=project)
                    if project_rules
                    else []
                )
                if f.rule != "CM000"
            ]
            findings.extend(local)
            findings.extend(proj)
            new_files[ctx.path] = {
                "digest": digest,
                "findings": [_finding_to_dict(f) for f in local],
                "project_findings": [_finding_to_dict(f) for f in proj],
            }

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if use_cache:
        write_cache(
            cache_path,
            {
                "schema": CACHE_SCHEMA,
                "rules_version": rules_version,
                "project_digest": project_digest,
                "files": new_files,
            },
        )
    return findings, stats
