"""Rule catalogue generation: the README table is derived, not written.

The README's crowdlint table is regenerated from each rule's
``rule_id`` / ``title`` / ``severity`` metadata between two HTML marker
comments, and a drift test fails whenever the committed table disagrees
with :data:`repro.analysis.rules.ALL_RULES` — so adding a rule without
documenting it (or documenting a rule that does not exist) breaks CI.

Regenerate with::

    python -m repro.analysis --update-rule-docs
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.engine import Rule
from repro.analysis.rules import ALL_RULES

RULE_TABLE_BEGIN = "<!-- crowdlint-rule-table:begin (generated; run python -m repro.analysis --update-rule-docs) -->"
RULE_TABLE_END = "<!-- crowdlint-rule-table:end -->"

DEFAULT_README = "README.md"


def rule_table_markdown(rules: Optional[Sequence[Rule]] = None) -> str:
    """The generated markdown table (without the marker comments)."""
    if rules is None:
        rules = ALL_RULES
    lines: List[str] = [
        "| Rule | Severity | Enforces |",
        "| ---- | -------- | -------- |",
    ]
    for rule in sorted(rules, key=lambda r: r.rule_id):
        lines.append(f"| {rule.rule_id} | {rule.severity} | {rule.title} |")
    return "\n".join(lines)


def render_rule_table(rules: Optional[Sequence[Rule]] = None) -> str:
    """Marker-delimited block as it should appear in the README."""
    return f"{RULE_TABLE_BEGIN}\n{rule_table_markdown(rules)}\n{RULE_TABLE_END}"


def extract_rule_table(readme_text: str) -> Optional[str]:
    """The current marker-delimited block, or None when markers are absent."""
    start = readme_text.find(RULE_TABLE_BEGIN)
    if start < 0:
        return None
    end = readme_text.find(RULE_TABLE_END, start)
    if end < 0:
        return None
    return readme_text[start : end + len(RULE_TABLE_END)]


def update_readme(
    readme_path: str = DEFAULT_README,
    rules: Optional[Sequence[Rule]] = None,
) -> bool:
    """Rewrite the README's rule table in place; True when it changed."""
    with open(readme_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    current = extract_rule_table(text)
    if current is None:
        raise ValueError(
            f"{readme_path} has no crowdlint rule-table markers "
            f"({RULE_TABLE_BEGIN!r} ... {RULE_TABLE_END!r})"
        )
    desired = render_rule_table(rules)
    if current == desired:
        return False
    with open(readme_path, "w", encoding="utf-8") as fh:
        fh.write(text.replace(current, desired))
    return True
