"""Project import graph and the declared architecture layer DAG.

The layering contract (rule CM010) declares the repo's packages as an
ordered stack of layers; a module may import modules in its own layer or
any layer *below* it, never above:

    core / geometry / sensors        (0: math, config, contracts)
        <- vision                    (1: image kernels)
        <- world / baselines         (2: simulator, comparison methods)
        <- eval / bench              (3: quality + perf harnesses)
        <- backend                   (4: cache, workers, shm, serving infra)
        <- serving / analysis        (5: traffic tier, this linter)
        <- fleet                     (6: multi-node gossip fusion)

A module's layer is the *last* dotted-path segment that names a layer
(``repro.vision.hog`` -> ``vision``), mirroring how the path-scoped rules
CM006-CM008 recognise their directories; modules naming no layer
(``repro.cli``, ``repro.__main__``) are unlayered — unrestricted
themselves, but traversed when computing transitive reach so a layered
module cannot launder an upward edge through them.

Because every *direct* edge between layered modules is checked, transitive
violations can only arise through unlayered intermediates — that is the
one case where :class:`ImportGraph` walks chains, and CM010 reports the
full import chain as evidence.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.engine import ImportStmt

#: The declared layer stack, lowest first. Packages sharing a tuple are
#: one layer and may import each other freely.
LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("core", "geometry", "sensors"),
    ("vision",),
    ("dataflow",),
    ("world", "baselines"),
    ("eval", "bench"),
    ("backend",),
    ("serving", "analysis"),
    ("fleet",),
)

#: layer name -> index in the stack (0 = bottom).
LAYER_INDEX: Dict[str, int] = {
    name: idx for idx, group in enumerate(LAYERS) for name in group
}


def layer_of(module: str) -> Optional[str]:
    """Layer name a dotted module belongs to, or None when unlayered.

    The *last* matching segment wins so fixture packages nested under
    ``tests.analysis.fixtures`` resolve to the fixture's own layer, not to
    ``analysis``.
    """
    for part in reversed(module.split(".")):
        if part in LAYER_INDEX:
            return part
    return None


def layer_index_of(module: str) -> Optional[int]:
    layer = layer_of(module)
    return None if layer is None else LAYER_INDEX[layer]


class ImportGraph:
    """Module-granularity import graph over one project's file set.

    Nodes are dotted module names; edges keep the first
    :class:`~repro.analysis.engine.ImportStmt` that created them so rules
    can anchor findings on real source lines. ``TYPE_CHECKING`` imports
    never become edges (annotation-only, no runtime coupling); lazy
    function-body imports do (deferred, but real).
    """

    def __init__(self, modules: Iterable[str]):
        self._modules = set(modules)
        self._edges: Dict[str, Dict[str, ImportStmt]] = {}

    @property
    def modules(self) -> List[str]:
        return sorted(self._modules)

    def resolve_target(self, stmt: ImportStmt) -> Optional[str]:
        """Project module an import statement lands on, if any.

        ``from pkg import name`` may address either the module
        ``pkg.name`` or an attribute of ``pkg``; prefer the deeper module
        when it exists in the project. ``import a.b.c`` walks the dotted
        prefix chain so importing a subpackage registers an edge to the
        deepest project module it names.
        """
        if stmt.name:
            candidate = f"{stmt.module}.{stmt.name}"
            if candidate in self._modules:
                return candidate
        parts = stmt.module.split(".")
        for depth in range(len(parts), 0, -1):
            prefix = ".".join(parts[:depth])
            if prefix in self._modules:
                return prefix
        return None

    def add_import(self, src: str, stmt: ImportStmt) -> Optional[str]:
        """Register the edge an import creates; returns the target module."""
        if stmt.type_checking:
            return None
        dst = self.resolve_target(stmt)
        if dst is None or dst == src:
            return None
        self._edges.setdefault(src, {}).setdefault(dst, stmt)
        return dst

    def edges_from(self, src: str) -> List[Tuple[str, ImportStmt]]:
        return sorted(self._edges.get(src, {}).items())

    def highest_reach_through_unlayered(
        self, start: str
    ) -> Optional[Tuple[int, List[str]]]:
        """Deepest layer reachable from an *unlayered* start module.

        Walks runtime edges, passing through unlayered modules only and
        stopping at the first layered module on each branch (beyond that,
        the layered module's own direct edges are CM010-checked, so blame
        belongs there). Returns ``(layer index, chain)`` for the highest
        layered module found, with the BFS chain from ``start`` to it;
        None when no layered module is reachable.
        """
        best: Optional[Tuple[int, List[str]]] = None
        queue = deque([[start]])
        seen = {start}
        while queue:
            chain = queue.popleft()
            for dst, _stmt in self.edges_from(chain[-1]):
                if dst in seen:
                    continue
                seen.add(dst)
                idx = layer_index_of(dst)
                if idx is None:
                    queue.append(chain + [dst])
                elif best is None or idx > best[0]:
                    best = (idx, chain + [dst])
        return best


def build_import_graph(contexts: Sequence) -> ImportGraph:
    """Graph over parsed modules (any context lacking a name is skipped)."""
    named = [c for c in contexts if c.module_name]
    graph = ImportGraph(c.module_name for c in named)
    for ctx in named:
        for stmt in ctx.imports:
            graph.add_import(ctx.module_name, stmt)
    return graph
