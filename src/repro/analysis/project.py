"""Whole-program context for cross-module crowdlint rules.

:class:`ProjectContext` is built once per lint run from every parsed
module (see :func:`repro.analysis.engine.lint_paths` and the incremental
driver in :mod:`repro.analysis.cache`). It exposes what the CM010-CM012
rules need beyond a single file's AST:

- the module set keyed by dotted name, with relative imports already
  resolved against each file's package (``ModuleContext.imports``);
- the runtime import graph (:class:`~repro.analysis.graph.ImportGraph`);
- a top-level function table for cross-module call resolution, so the
  parallel-safety rule can follow ``map_parallel(compute.work, ...)``
  into ``compute``'s file;
- per-module binding summaries: which names are bound at module level,
  and which of those are bound to *mutable* literals (the state a worker
  closure must not capture or mutate).

Everything here is derived purely from the ASTs — no project module is
ever imported.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleContext
from repro.analysis.graph import ImportGraph, build_import_graph

#: Calls whose result is mutable state when bound at module level.
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
}


def _assigned_names(target: ast.expr) -> Iterable[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


class ModuleSummary:
    """Per-module binding facts shared by the project rules."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        #: every name bound by a module-level statement (assignments,
        #: defs, classes, imports, for/with targets).
        self.module_level_names: Set[str] = set()
        #: subset of the above bound to a mutable literal or factory call.
        self.mutable_globals: Set[str] = set()
        #: top-level function definitions by name.
        self.functions: Dict[str, ast.AST] = {}
        self._scan()

    def _scan(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_level_names.add(node.name)
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.module_level_names.add(node.name)
            elif isinstance(node, ast.Assign):
                names = [n for t in node.targets for n in _assigned_names(t)]
                self.module_level_names.update(names)
                if _is_mutable_literal(node.value):
                    self.mutable_globals.update(names)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.module_level_names.add(node.target.id)
                if node.value is not None and _is_mutable_literal(node.value):
                    self.mutable_globals.add(node.target.id)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                self.module_level_names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name != "*":
                        bound = alias.asname or alias.name.split(".")[0]
                        self.module_level_names.add(bound)
            elif isinstance(node, (ast.For, ast.With)):
                targets = (
                    [node.target] if isinstance(node, ast.For)
                    else [i.optional_vars for i in node.items if i.optional_vars]
                )
                for target in targets:
                    self.module_level_names.update(_assigned_names(target))


class ProjectContext:
    """Every parsed module of one lint run, plus derived lookups."""

    def __init__(self, contexts: Sequence[ModuleContext], graph: ImportGraph):
        self.modules: Dict[str, ModuleContext] = {
            c.module_name: c for c in contexts if c.module_name
        }
        self.graph = graph
        self._summaries: Dict[str, ModuleSummary] = {}

    @classmethod
    def from_contexts(cls, contexts: Sequence[ModuleContext]) -> "ProjectContext":
        return cls(contexts, build_import_graph(contexts))

    def summary(self, ctx: ModuleContext) -> ModuleSummary:
        """Binding summary for a module (cached; works for unnamed files)."""
        key = ctx.module_name or ctx.path
        cached = self._summaries.get(key)
        if cached is None or cached.ctx is not ctx:
            cached = ModuleSummary(ctx)
            self._summaries[key] = cached
        return cached

    def resolve_function(
        self, dotted: str
    ) -> Optional[Tuple[ModuleContext, ast.AST]]:
        """Find the project function a dotted path addresses.

        ``repro.core.compute.work`` resolves when ``repro.core.compute``
        is a project module defining top-level ``work``. Deeper suffixes
        (methods, attributes of attributes) do not resolve — the
        parallel-safety rule treats them as opaque.
        """
        if "." not in dotted:
            return None
        module, func = dotted.rsplit(".", 1)
        ctx = self.modules.get(module)
        if ctx is None:
            return None
        node = self.summary(ctx).functions.get(func)
        return None if node is None else (ctx, node)
