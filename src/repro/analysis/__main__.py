"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exits 0 when the tree is clean (after inline pragmas and the baseline
file), 1 when *error*-severity findings remain, 2 on usage errors — the
contract the ``static-analysis`` CI job relies on. Advisory findings are
printed but never change the exit code.

Incremental runs are the default: per-file findings are cached in
``.crowdlint_cache.json`` keyed on source sha1 + rule-set version, and a
fully warm run replays findings without parsing anything. Cache-hit
statistics go to **stderr**, so stdout (text, ``--format json`` or
``--format sarif``) is byte-identical between cold and warm runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_PATH, cached_lint
from repro.analysis.catalog import update_readme
from repro.analysis.engine import format_findings, lint_paths
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import format_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "crowdlint: repo-native static analysis "
            "(per-file rules CM001-CM008, project rules CM010-CM012)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="alias for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--cache", metavar="PATH", default=DEFAULT_CACHE_PATH,
        help=f"incremental cache file (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental cache",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=(
            "baseline suppression file (default: nearest "
            ".crowdlint-baseline.json at or above the current directory)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined findings too",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help=(
            "write current findings to PATH as baseline entries "
            "(with TODO reasons to fill in) and exit"
        ),
    )
    parser.add_argument(
        "--update-rule-docs", nargs="?", const="README.md", metavar="README",
        help="regenerate the README rule table from ALL_RULES and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if args.update_rule_docs:
        try:
            changed = update_readme(args.update_rule_docs)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        state = "updated" if changed else "already up to date"
        print(f"{args.update_rule_docs}: rule table {state}", file=sys.stderr)
        return 0

    rules = list(ALL_RULES)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in ALL_RULES}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [r for r in ALL_RULES if r.rule_id in wanted]

    try:
        if args.no_cache:
            findings = lint_paths(args.paths, rules=rules)
            stats = None
        else:
            findings, stats = cached_lint(
                args.paths, rules=rules, cache_path=args.cache
            )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings)
        print(
            f"{args.write_baseline}: wrote {count} entrie(s) covering "
            f"{len(findings)} finding(s); fill in every TODO reason",
            file=sys.stderr,
        )
        return 0

    suppressed = 0
    if not args.no_baseline:
        baseline_path = args.baseline or find_baseline()
        if baseline_path:
            try:
                entries = load_baseline(baseline_path)
            except BaselineError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            findings, suppressed, unused = apply_baseline(findings, entries)
            if unused:
                stale = ", ".join(
                    f"{e.rule} {e.path}" for e in unused[:3]
                ) + (", ..." if len(unused) > 3 else "")
                print(
                    f"crowdlint baseline: {len(unused)} entrie(s) matched "
                    f"nothing ({stale}) — delete stale entries",
                    file=sys.stderr,
                )

    if args.as_json or args.format == "json":
        payload: List[dict] = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "severity": f.severity,
                "end_line": f.span_end,
            }
            for f in findings
        ]
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(format_sarif(findings, rules))
    else:
        print(format_findings(findings))

    if stats is not None:
        print(stats.describe(), file=sys.stderr)
    if suppressed:
        print(
            f"crowdlint baseline: {suppressed} finding(s) suppressed",
            file=sys.stderr,
        )
    return 1 if any(f.severity == "error" for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
