"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exits 0 when the tree is clean, 1 when there are *error*-severity
findings, 2 on usage errors — the contract the ``static-analysis`` CI
job relies on. Advisory findings (CM006) are printed but never change
the exit code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import format_findings, lint_paths
from repro.analysis.rules import ALL_RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="crowdlint: repo-native static analysis (rules CM001-CM008)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array instead of text",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rules = list(ALL_RULES)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in ALL_RULES}
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [r for r in ALL_RULES if r.rule_id in wanted]

    try:
        findings = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.as_json:
        payload: List[dict] = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "severity": f.severity,
            }
            for f in findings
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(format_findings(findings))
    return 1 if any(f.severity == "error" for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
