"""SARIF 2.1.0 output for crowdlint findings.

GitHub code scanning ingests SARIF, so the ``static-analysis`` CI job can
surface CM findings as review annotations instead of burying them in a
log. The emitter is deliberately minimal — one run, one tool, static rule
descriptors from :data:`repro.analysis.rules.ALL_RULES` — and fully
deterministic (no timestamps, sorted keys), which is what lets the
incremental driver's warm output be byte-compared against cold.

Severity mapping: crowdlint ``error`` -> SARIF ``error`` (gates the
build), crowdlint ``advisory`` -> SARIF ``note`` (annotation only).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import ALL_RULES, RULES_VERSION

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {"error": "error", "advisory": "note"}


def _rule_descriptor(rule_id: str, title: str, severity: str) -> dict:
    return {
        "id": rule_id,
        "name": title or rule_id,
        "shortDescription": {"text": title or rule_id},
        "defaultConfiguration": {"level": _LEVELS.get(severity, "error")},
    }


def _descriptors(rules: Sequence[Rule]) -> List[dict]:
    table: Dict[str, dict] = {
        # CM000 covers malformed pragmas and syntax errors — emitted by
        # the engine itself, so it has no Rule instance to enumerate.
        "CM000": _rule_descriptor(
            "CM000", "malformed pragma or unparseable source", "error"
        )
    }
    for rule in rules:
        table[rule.rule_id] = _rule_descriptor(
            rule.rule_id, rule.title, rule.severity
        )
    return [table[rule_id] for rule_id in sorted(table)]


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/")
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                        "endLine": max(finding.span_end, 1),
                    },
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None
) -> dict:
    """SARIF log dict for one lint run."""
    if rules is None:
        rules = ALL_RULES
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "crowdlint",
                        "informationUri": (
                            "https://github.com/crowd-map/repro"
                            "/blob/main/src/repro/analysis/__init__.py"
                        ),
                        "version": RULES_VERSION,
                        "rules": _descriptors(rules),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(f) for f in findings],
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None
) -> str:
    """Serialized SARIF log (stable key order, trailing newline)."""
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)
