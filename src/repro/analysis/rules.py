"""The crowdlint rule set (CM001–CM008).

Each rule encodes one repo invariant that a generic linter cannot check.
See the package docstring for the one-line summary of each; the classes
below document the precise detection logic and its deliberate blind spots.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Module-level numpy RNG entry points that draw from (or mutate) the
#: hidden global state. Calling any of these makes a run order-dependent.
_NP_GLOBAL_RNG_FNS = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "normal", "uniform", "choice", "shuffle",
    "permutation", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "gamma", "bytes",
}

#: Wall-clock reads. Monotonic clocks (``perf_counter``, ``monotonic``)
#: are fine: they measure durations, not calendar time, and cannot leak
#: nondeterminism into artifacts.
_WALL_CLOCK_FNS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class UnseededRngRule(Rule):
    """CM001: library code must thread an explicit, seeded Generator.

    Flags ``np.random.default_rng()`` with no seed argument, any
    module-level ``np.random.<draw>()`` call (global-state RNG), and
    unseeded ``np.random.RandomState()``. Calls on a *local* generator
    object (``rng.normal(...)``, ``self.rng.choice(...)``) do not resolve
    to the numpy module and are never flagged — threading a generator is
    exactly the pattern this rule exists to enforce.
    """

    rule_id = "CM001"
    title = "unseeded / global numpy RNG"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name is None:
                continue
            if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"unseeded {name.split('.')[-1]}() — pass a seed or "
                        "thread an explicit np.random.Generator",
                    )
            elif (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[-1] in _NP_GLOBAL_RNG_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"module-level {name}() uses numpy's hidden global RNG "
                    "state — thread an explicit np.random.Generator",
                )


class WallClockRule(Rule):
    """CM002: algorithmic modules must not read the wall clock.

    Calendar time in library code makes outputs depend on when they ran;
    anything that needs a timestamp must accept an injectable clock.
    Monotonic timers are allowed (duration telemetry), and modules with a
    legitimate need (backend telemetry export) allowlist the call site
    with a reason.
    """

    rule_id = "CM002"
    title = "wall-clock read in algorithmic code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in _WALL_CLOCK_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() reads the wall clock — inject a clock "
                    "callable instead (monotonic perf_counter is allowed)",
                )


class SwallowedExceptionRule(Rule):
    """CM003: ``except Exception`` must record what it caught.

    The quarantine invariant from the fault-tolerance layer: shedding a
    bad input is fine, *losing the evidence* is not. A broad handler
    passes when it re-raises, or binds the exception and actually uses
    the bound name (stores it in a failure report, formats it into
    telemetry). A broad handler that does neither is flagged.
    """

    rule_id = "CM003"
    title = "except Exception swallows the error"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # bare except:
        if isinstance(handler.type, ast.Name) and handler.type.id in self._BROAD:
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in self._BROAD
                for el in handler.type.elts
            )
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or not self._is_broad(node):
                continue
            reraises = any(isinstance(n, ast.Raise) for sub in node.body
                           for n in ast.walk(sub))
            uses_name = False
            if node.name is not None:
                uses_name = any(
                    isinstance(n, ast.Name) and n.id == node.name
                    for sub in node.body
                    for n in ast.walk(sub)
                )
            if not reraises and not uses_name:
                yield self.finding(
                    ctx, node,
                    "broad except swallows the error without recording it — "
                    "re-raise, store the exception in a failure report, or "
                    "allowlist with a reason",
                )


class FloatEqualityRule(Rule):
    """CM004: no ``==`` / ``!=`` against float literals.

    Float equality is only ever correct for exact sentinel values, and
    those deserve an explicit pragma saying so. The rule flags any
    comparison where one side is a float constant; integer-literal
    comparisons (``d1 == 0`` on a cross product) are deliberately not
    flagged — they are usually exactness tests on small-integer-valued
    expressions and flagging them drowns the signal.
    """

    rule_id = "CM004"
    title = "float literal equality comparison"

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # -1.0 parses as UnaryOp(USub, Constant(1.0)).
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield self.finding(
                        ctx, node,
                        "float equality comparison — use an epsilon "
                        "(math.isclose / np.isclose), an inequality on a "
                        "non-negative quantity, or allowlist an exact "
                        "sentinel with a reason",
                    )
                    break


class ConfigFieldRule(Rule):
    """CM005: config field references must name real dataclass fields.

    Sweeps, ablations and CLI glue refer to ``CrowdMapConfig`` thresholds
    by keyword — ``config.with_overrides(lcss_epsilon=...)`` — and a typo
    there silently sweeps nothing. The rule resolves the real field set by
    importing the dataclass and validates every keyword on
    ``.with_overrides(...)`` calls, ``CrowdMapConfig(...)`` constructor
    calls, and string literals in ``getattr``/``setattr``/``hasattr``
    whose target is named like a config.
    """

    rule_id = "CM005"
    title = "unknown CrowdMapConfig field"

    def __init__(self) -> None:
        self._fields: Optional[Set[str]] = None

    def _config_fields(self) -> Set[str]:
        if self._fields is None:
            import dataclasses

            from repro.core.config import CrowdMapConfig

            self._fields = {f.name for f in dataclasses.fields(CrowdMapConfig)}
        return self._fields

    @staticmethod
    def _is_config_name(node: ast.expr) -> bool:
        """Heuristic: does this expression look like a CrowdMapConfig?"""
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return name is not None and (name in ("config", "cfg") or name.endswith("_config"))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        fields = self._config_fields()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            keywords: List[Tuple[str, ast.AST]] = []
            if isinstance(node.func, ast.Attribute) and node.func.attr == "with_overrides":
                keywords = [(kw.arg, kw) for kw in node.keywords if kw.arg is not None]
            elif (
                isinstance(node.func, ast.Name) and node.func.id == "CrowdMapConfig"
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "CrowdMapConfig"
            ):
                keywords = [(kw.arg, kw) for kw in node.keywords if kw.arg is not None]
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("getattr", "setattr", "hasattr")
                and len(node.args) >= 2
                and self._is_config_name(node.args[0])
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                keywords = [(node.args[1].value, node.args[1])]
            for field_name, anchor in keywords:
                if field_name not in fields:
                    yield self.finding(
                        ctx, anchor,
                        f"'{field_name}' is not a CrowdMapConfig field — "
                        "known fields include "
                        + ", ".join(sorted(fields)[:4]) + ", ...",
                    )


class ElementwiseLoopRule(Rule):
    """CM006: per-element array loops in the vision hot path.

    The vision kernels dominate the pipeline's runtime and the perf work
    keeps them vectorized; a ``for`` loop whose body subscripts an array
    with its own loop variable is the classic element-wise pattern numpy
    replaces wholesale, and it tends to creep back in during bug fixes.
    The rule only examines modules in a ``vision`` directory and is
    **advisory**: it reports but never fails the build, because some
    loops are genuinely sequential (LSD's region growing, per-tap kernel
    accumulation) — those carry an ``allow[CM006]`` pragma whose reason
    documents why the loop must stay.

    Deliberate blind spots: comprehensions (typically packaging results,
    not per-pixel math) and loops that never index with their loop
    variable (chunk iteration, retries).
    """

    rule_id = "CM006"
    title = "element-wise array loop in vision kernel"
    severity = "advisory"

    _PATH_DIR = "vision"

    @staticmethod
    def _target_names(target: ast.expr) -> Set[str]:
        return {
            node.id for node in ast.walk(target) if isinstance(node, ast.Name)
        }

    def _loop_indexes_with_target(self, loop: ast.For) -> bool:
        names = self._target_names(loop.target)
        if not names:
            return False
        for stmt in loop.body:
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Subscript):
                    continue
                for ref in ast.walk(inner.slice):
                    if isinstance(ref, ast.Name) and ref.id in names:
                        return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._loop_indexes_with_target(node):
                yield self.finding(
                    ctx, node,
                    "loop subscripts with its own loop variable — vectorize "
                    "with array expressions, or allowlist with the reason "
                    "the loop is genuinely sequential",
                )


class RealTimeWaitRule(Rule):
    """CM007: no real-time waits inside ``repro/serving/``.

    The serving layer's whole determinism story is that *everything* runs
    on the virtual clock (the event loop and ``SimulatedScheduler``): the
    same seed reproduces the same SLO report on any machine. One
    ``time.sleep`` (or an asyncio sleep against the real loop) couples
    results to host timing and silently breaks that. The rule is
    **advisory** like CM006 — a deliberately-blocking test harness is
    conceivable — but any such call needs an ``allow[CM007]`` pragma
    explaining itself.

    Wall-clock *reads* are already CM002; this rule is about *waits*.
    """

    rule_id = "CM007"
    title = "real-time wait in the serving layer"
    severity = "advisory"

    _PATH_DIR = "serving"
    _WAIT_FNS = {"time.sleep", "asyncio.sleep"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in self._WAIT_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() waits on real time — the serving layer runs "
                    "entirely on the virtual clock (EventLoop.schedule / "
                    "SimulatedScheduler); model delays as scheduled events",
                )


class EvalClockRule(Rule):
    """CM008: no clock reads or waits inside ``repro/eval/``.

    The accuracy gate's whole premise is that the committed
    ``ACCURACY_baseline.json`` regenerates *bit-identically* per seed:
    CI diffs fresh scorecards against it. Wall-clock reads are already
    CM002 everywhere, but evaluation code additionally must not read the
    *monotonic* clocks (``time.perf_counter``, ``time.monotonic``, the
    process/thread CPU timers) — a duration smuggled into a scorecard
    artifact varies per host and silently breaks the bit-compare — nor
    sleep. Timing belongs to ``repro.bench``; scorecard cells carry none.

    Unlike the advisory path-scoped rules (CM006/CM007) this one is an
    **error**: there is no legitimate reason for the quality gate itself
    to observe time. The pipeline's internal stage timings (recorded
    outside ``eval/``) stay allowed and are simply never serialized into
    accuracy reports.
    """

    rule_id = "CM008"
    title = "clock read or wait in evaluation code"

    _PATH_DIR = "eval"
    _CLOCK_FNS = {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.sleep",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in self._CLOCK_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() observes time inside eval code — scorecard "
                    "artifacts must regenerate bit-identically per seed; "
                    "move timing into repro.bench",
                )


ALL_RULES: Sequence[Rule] = (
    UnseededRngRule(),
    WallClockRule(),
    SwallowedExceptionRule(),
    FloatEqualityRule(),
    ConfigFieldRule(),
    ElementwiseLoopRule(),
    RealTimeWaitRule(),
    EvalClockRule(),
)
