"""The crowdlint rule set (CM001–CM013).

Each rule encodes one repo invariant that a generic linter cannot check.
See the package docstring for the one-line summary of each; the classes
below document the precise detection logic and its deliberate blind spots.
CM001–CM008 are per-file rules; CM010–CM011 are *project* rules driven
with the whole-program :class:`~repro.analysis.project.ProjectContext`
(import graph, cross-module call resolution), CM012 tracks shm
lifecycles along straight-line paths within one file, and CM013 keeps
reconstruction stage calls inside the sanctioned dataflow entry points.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ImportStmt,
    ModuleContext,
    ProjectRule,
    Rule,
)
from repro.analysis.graph import layer_index_of, layer_of

#: Bump whenever a rule's detection logic or the finding schema changes:
#: the incremental cache (.crowdlint_cache.json) and the CI cache key are
#: both keyed on it, so stale cached findings can never survive a rule
#: change. Format: <highest rule id>.<revision>.
RULES_VERSION = "cm013.1"

#: Module-level numpy RNG entry points that draw from (or mutate) the
#: hidden global state. Calling any of these makes a run order-dependent.
_NP_GLOBAL_RNG_FNS = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "normal", "uniform", "choice", "shuffle",
    "permutation", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "gamma", "bytes",
}

#: Wall-clock reads. Monotonic clocks (``perf_counter``, ``monotonic``)
#: are fine: they measure durations, not calendar time, and cannot leak
#: nondeterminism into artifacts.
_WALL_CLOCK_FNS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class UnseededRngRule(Rule):
    """CM001: library code must thread an explicit, seeded Generator.

    Flags ``np.random.default_rng()`` with no seed argument, any
    module-level ``np.random.<draw>()`` call (global-state RNG), and
    unseeded ``np.random.RandomState()``. Calls on a *local* generator
    object (``rng.normal(...)``, ``self.rng.choice(...)``) do not resolve
    to the numpy module and are never flagged — threading a generator is
    exactly the pattern this rule exists to enforce.
    """

    rule_id = "CM001"
    title = "unseeded / global numpy RNG"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name is None:
                continue
            if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"unseeded {name.split('.')[-1]}() — pass a seed or "
                        "thread an explicit np.random.Generator",
                    )
            elif (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[-1] in _NP_GLOBAL_RNG_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"module-level {name}() uses numpy's hidden global RNG "
                    "state — thread an explicit np.random.Generator",
                )


class WallClockRule(Rule):
    """CM002: algorithmic modules must not read the wall clock.

    Calendar time in library code makes outputs depend on when they ran;
    anything that needs a timestamp must accept an injectable clock.
    Monotonic timers are allowed (duration telemetry), and modules with a
    legitimate need (backend telemetry export) allowlist the call site
    with a reason.
    """

    rule_id = "CM002"
    title = "wall-clock read in algorithmic code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in _WALL_CLOCK_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() reads the wall clock — inject a clock "
                    "callable instead (monotonic perf_counter is allowed)",
                )


class SwallowedExceptionRule(Rule):
    """CM003: ``except Exception`` must record what it caught.

    The quarantine invariant from the fault-tolerance layer: shedding a
    bad input is fine, *losing the evidence* is not. A broad handler
    passes when it re-raises, or binds the exception and actually uses
    the bound name (stores it in a failure report, formats it into
    telemetry). A broad handler that does neither is flagged.
    """

    rule_id = "CM003"
    title = "except Exception swallows the error"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # bare except:
        if isinstance(handler.type, ast.Name) and handler.type.id in self._BROAD:
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in self._BROAD
                for el in handler.type.elts
            )
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or not self._is_broad(node):
                continue
            reraises = any(isinstance(n, ast.Raise) for sub in node.body
                           for n in ast.walk(sub))
            uses_name = False
            if node.name is not None:
                uses_name = any(
                    isinstance(n, ast.Name) and n.id == node.name
                    for sub in node.body
                    for n in ast.walk(sub)
                )
            if not reraises and not uses_name:
                yield self.finding(
                    ctx, node,
                    "broad except swallows the error without recording it — "
                    "re-raise, store the exception in a failure report, or "
                    "allowlist with a reason",
                )


class FloatEqualityRule(Rule):
    """CM004: no ``==`` / ``!=`` against float literals.

    Float equality is only ever correct for exact sentinel values, and
    those deserve an explicit pragma saying so. The rule flags any
    comparison where one side is a float constant; integer-literal
    comparisons (``d1 == 0`` on a cross product) are deliberately not
    flagged — they are usually exactness tests on small-integer-valued
    expressions and flagging them drowns the signal.
    """

    rule_id = "CM004"
    title = "float literal equality comparison"

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # -1.0 parses as UnaryOp(USub, Constant(1.0)).
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield self.finding(
                        ctx, node,
                        "float equality comparison — use an epsilon "
                        "(math.isclose / np.isclose), an inequality on a "
                        "non-negative quantity, or allowlist an exact "
                        "sentinel with a reason",
                    )
                    break


class ConfigFieldRule(Rule):
    """CM005: config field references must name real dataclass fields.

    Sweeps, ablations and CLI glue refer to ``CrowdMapConfig`` thresholds
    by keyword — ``config.with_overrides(lcss_epsilon=...)`` — and a typo
    there silently sweeps nothing. The rule resolves the real field set by
    importing the dataclass and validates every keyword on
    ``.with_overrides(...)`` calls, ``CrowdMapConfig(...)`` constructor
    calls, and string literals in ``getattr``/``setattr``/``hasattr``
    whose target is named like a config.
    """

    rule_id = "CM005"
    title = "unknown CrowdMapConfig field"

    def __init__(self) -> None:
        self._fields: Optional[Set[str]] = None

    def _config_fields(self) -> Set[str]:
        if self._fields is None:
            import dataclasses

            from repro.core.config import CrowdMapConfig

            self._fields = {f.name for f in dataclasses.fields(CrowdMapConfig)}
        return self._fields

    @staticmethod
    def _is_config_name(node: ast.expr) -> bool:
        """Heuristic: does this expression look like a CrowdMapConfig?"""
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return name is not None and (name in ("config", "cfg") or name.endswith("_config"))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        fields = self._config_fields()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            keywords: List[Tuple[str, ast.AST]] = []
            if isinstance(node.func, ast.Attribute) and node.func.attr == "with_overrides":
                keywords = [(kw.arg, kw) for kw in node.keywords if kw.arg is not None]
            elif (
                isinstance(node.func, ast.Name) and node.func.id == "CrowdMapConfig"
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "CrowdMapConfig"
            ):
                keywords = [(kw.arg, kw) for kw in node.keywords if kw.arg is not None]
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("getattr", "setattr", "hasattr")
                and len(node.args) >= 2
                and self._is_config_name(node.args[0])
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                keywords = [(node.args[1].value, node.args[1])]
            for field_name, anchor in keywords:
                if field_name not in fields:
                    yield self.finding(
                        ctx, anchor,
                        f"'{field_name}' is not a CrowdMapConfig field — "
                        "known fields include "
                        + ", ".join(sorted(fields)[:4]) + ", ...",
                    )


class ElementwiseLoopRule(Rule):
    """CM006: per-element array loops in the vision hot path.

    The vision kernels dominate the pipeline's runtime and the perf work
    keeps them vectorized; a ``for`` loop whose body subscripts an array
    with its own loop variable is the classic element-wise pattern numpy
    replaces wholesale, and it tends to creep back in during bug fixes.
    The rule only examines modules in a ``vision`` directory and is
    **advisory**: it reports but never fails the build, because some
    loops are genuinely sequential (LSD's region growing, per-tap kernel
    accumulation) — those carry an ``allow[CM006]`` pragma whose reason
    documents why the loop must stay.

    Deliberate blind spots: comprehensions (typically packaging results,
    not per-pixel math) and loops that never index with their loop
    variable (chunk iteration, retries).
    """

    rule_id = "CM006"
    title = "element-wise array loop in vision kernel"
    severity = "advisory"

    _PATH_DIR = "vision"

    @staticmethod
    def _target_names(target: ast.expr) -> Set[str]:
        return {
            node.id for node in ast.walk(target) if isinstance(node, ast.Name)
        }

    def _loop_indexes_with_target(self, loop: ast.For) -> bool:
        names = self._target_names(loop.target)
        if not names:
            return False
        for stmt in loop.body:
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Subscript):
                    continue
                for ref in ast.walk(inner.slice):
                    if isinstance(ref, ast.Name) and ref.id in names:
                        return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._loop_indexes_with_target(node):
                yield self.finding(
                    ctx, node,
                    "loop subscripts with its own loop variable — vectorize "
                    "with array expressions, or allowlist with the reason "
                    "the loop is genuinely sequential",
                )


class RealTimeWaitRule(Rule):
    """CM007: no real-time waits inside ``repro/serving/``.

    The serving layer's whole determinism story is that *everything* runs
    on the virtual clock (the event loop and ``SimulatedScheduler``): the
    same seed reproduces the same SLO report on any machine. One
    ``time.sleep`` (or an asyncio sleep against the real loop) couples
    results to host timing and silently breaks that. The rule is
    **advisory** like CM006 — a deliberately-blocking test harness is
    conceivable — but any such call needs an ``allow[CM007]`` pragma
    explaining itself.

    Wall-clock *reads* are already CM002; this rule is about *waits*.
    """

    rule_id = "CM007"
    title = "real-time wait in the serving layer"
    severity = "advisory"

    _PATH_DIR = "serving"
    _WAIT_FNS = {"time.sleep", "asyncio.sleep"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in self._WAIT_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() waits on real time — the serving layer runs "
                    "entirely on the virtual clock (EventLoop.schedule / "
                    "SimulatedScheduler); model delays as scheduled events",
                )


class EvalClockRule(Rule):
    """CM008: no clock reads or waits inside ``repro/eval/``.

    The accuracy gate's whole premise is that the committed
    ``ACCURACY_baseline.json`` regenerates *bit-identically* per seed:
    CI diffs fresh scorecards against it. Wall-clock reads are already
    CM002 everywhere, but evaluation code additionally must not read the
    *monotonic* clocks (``time.perf_counter``, ``time.monotonic``, the
    process/thread CPU timers) — a duration smuggled into a scorecard
    artifact varies per host and silently breaks the bit-compare — nor
    sleep. Timing belongs to ``repro.bench``; scorecard cells carry none.

    Unlike the advisory path-scoped rules (CM006/CM007) this one is an
    **error**: there is no legitimate reason for the quality gate itself
    to observe time. The pipeline's internal stage timings (recorded
    outside ``eval/``) stay allowed and are simply never serialized into
    accuracy reports.
    """

    rule_id = "CM008"
    title = "clock read or wait in evaluation code"

    _PATH_DIR = "eval"
    _CLOCK_FNS = {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.sleep",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if self._PATH_DIR not in parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call_name(node.func)
            if name in self._CLOCK_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() observes time inside eval code — scorecard "
                    "artifacts must regenerate bit-identically per seed; "
                    "move timing into repro.bench",
                )


class LayeringRule(ProjectRule):
    """CM010: the declared layer DAG is a hard import contract.

    Layers (bottom up): core/geometry/sensors, vision, world/baselines,
    eval/bench, backend, serving/analysis (see
    :data:`repro.analysis.graph.LAYERS`). A layered module may import its
    own layer or below; an import that lands on a *higher* layer is a
    violation naming the offending edge. Unlayered modules (``repro.cli``)
    are unrestricted themselves but walked transitively, so an upward
    dependency cannot hide behind one — those findings carry the full
    import chain as evidence.

    ``if TYPE_CHECKING:`` imports are exempt (annotation-only coupling,
    the repo's established idiom — see ``repro.sensors.energy``); lazy
    function-body imports are real runtime edges and are checked.
    """

    rule_id = "CM010"
    title = "architecture layering violation"

    def check_project(self, ctx: ModuleContext, project) -> Iterator[Finding]:
        src = ctx.module_name
        if not src:
            return
        src_idx = layer_index_of(src)
        if src_idx is None:
            return
        src_layer = layer_of(src)
        reported: Set[Tuple[int, str]] = set()
        for stmt in ctx.imports:
            if stmt.type_checking:
                continue
            dst = project.graph.resolve_target(stmt)
            if dst is None or dst == src or (stmt.line, dst) in reported:
                continue
            reported.add((stmt.line, dst))
            dst_idx = layer_index_of(dst)
            if dst_idx is not None:
                if dst_idx > src_idx:
                    yield self._violation(
                        ctx, stmt, src_layer, layer_of(dst), [src, dst]
                    )
            else:
                reach = project.graph.highest_reach_through_unlayered(dst)
                if reach is not None and reach[0] > src_idx:
                    chain = [src] + reach[1]
                    yield self._violation(
                        ctx, stmt, src_layer, layer_of(chain[-1]), chain
                    )

    def _violation(
        self,
        ctx: ModuleContext,
        stmt: ImportStmt,
        src_layer: Optional[str],
        dst_layer: Optional[str],
        chain: List[str],
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=stmt.line,
            col=0,
            message=(
                f"layer '{src_layer}' must not import layer '{dst_layer}' "
                f"(import chain: {' -> '.join(chain)})"
            ),
            severity=self.severity,
            end_line=stmt.end_line,
        )


#: Parallel submission entry points whose first argument runs in workers.
_PARALLEL_ENTRIES = {
    "repro.backend.workers.map_parallel",
    "repro.backend.workers.map_with_failures",
}

#: Executor types whose ``.submit()``/``.map()`` ship work to processes.
_EXECUTOR_TYPES = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
}

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "__setitem__", "__delitem__",
}

_MAX_REACH_DEPTH = 8
_MAX_REACH_FNS = 200


def _root_name(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _bound_names(func: ast.AST) -> Set[str]:
    """Names bound inside a function scope (params, assignments, targets).

    ``global``/``nonlocal`` declarations are subtracted afterwards by the
    caller — a declared-global assignment is exactly the hazard CM011
    hunts, not a local binding.
    """
    def stored(target: ast.AST) -> Set[str]:
        # Only Store-context names bind: in ``TOTALS[key] = x`` both
        # TOTALS and key are *loads* — treating them as locals would
        # mask exactly the shared-state stores this rule hunts.
        return {
            n.id
            for n in ast.walk(target)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
        }

    bound: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bound.update(stored(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bound.update(stored(node.target))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        bound.update(stored(item.optional_vars))
            elif isinstance(node, ast.comprehension):
                bound.update(stored(node.target))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
    return bound


class ParallelSafetyRule(ProjectRule):
    """CM011: worker code must not touch shared mutable state.

    Finds every function statically reachable from a parallel submission —
    ``map_parallel``/``map_with_failures`` (resolved through imports) or
    ``.submit()``/``.map()`` on a ``ProcessPoolExecutor`` — and flags,
    inside each:

    - rebinding of a ``global``/``nonlocal`` name (process workers mutate
      a copy, thread workers race — either way results depend on backend
      and schedule, breaking twin-run identity);
    - in-place mutation of module-level state: subscript/attribute stores
      and mutating method calls (``.append``, ``.update`` …) whose root
      name is bound at module level rather than locally;
    - worker *closures* (lambdas, nested defs) that capture a
      module-level mutable (list/dict/set literal or factory) even
      read-only — under the process backend the closure sees a stale
      copy, under threads it races.

    Cross-module reach is resolved through the project function table
    (``map_parallel(compute.work, ...)`` follows into ``compute``'s
    file); calls through dynamic values (``function(item)``) are opaque
    and end the walk — the deliberate blind spot that keeps this a
    race *detector*, not a verifier.
    """

    rule_id = "CM011"
    title = "shared-state mutation in parallel worker"

    def check_project(self, ctx: ModuleContext, project) -> Iterator[Finding]:
        submissions = list(self._submissions(ctx))
        if not submissions:
            return
        reported: Set[Tuple[str, int, str]] = set()
        for worker_expr, entry_desc in submissions:
            units = self._resolve_callable(worker_expr, ctx, project)
            closure_units = [
                u for u in units
                if isinstance(u[1], ast.Lambda)
                or u[1] not in project.summary(u[0]).functions.values()
            ]
            for unit_ctx, node in closure_units:
                yield from self._check_capture(
                    unit_ctx, node, project, entry_desc, reported
                )
            yield from self._walk_reachable(units, project, entry_desc, reported)

    # -- submission discovery ------------------------------------------

    def _submissions(
        self, ctx: ModuleContext
    ) -> Iterator[Tuple[ast.expr, str]]:
        executor_names = self._executor_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call_name(node.func)
            worker: Optional[ast.expr] = None
            entry = None
            if resolved in _PARALLEL_ENTRIES:
                entry = resolved.rsplit(".", 1)[-1]
                worker = node.args[0] if node.args else next(
                    (kw.value for kw in node.keywords
                     if kw.arg in ("function", "fn", "func")),
                    None,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in executor_names
                and node.args
            ):
                entry = f"{node.func.value.id}.{node.func.attr}"
                worker = node.args[0]
            if worker is not None:
                yield worker, f"{entry}() at {ctx.path}:{node.lineno}"

    @staticmethod
    def _executor_names(ctx: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            value = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        if (
                            isinstance(item.context_expr, ast.Call)
                            and ctx.resolve_call_name(item.context_expr.func)
                            in _EXECUTOR_TYPES
                        ):
                            names.update(
                                n.id
                                for n in ast.walk(item.optional_vars)
                                if isinstance(n, ast.Name)
                            )
                continue
            if (
                value is not None
                and isinstance(value, ast.Call)
                and ctx.resolve_call_name(value.func) in _EXECUTOR_TYPES
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    # -- callable resolution -------------------------------------------

    def _resolve_callable(
        self, expr: ast.expr, ctx: ModuleContext, project
    ) -> List[Tuple[ModuleContext, ast.AST]]:
        if isinstance(expr, ast.Lambda):
            return [(ctx, expr)]
        if isinstance(expr, ast.Name):
            local = self._any_def(ctx, expr.id)
            if local is not None:
                return [(ctx, local)]
            dotted = ctx.from_imports.get(expr.id)
            if dotted:
                hit = project.resolve_function(dotted)
                return [hit] if hit else []
            return []
        if isinstance(expr, ast.Call):
            name = ctx.resolve_call_name(expr.func)
            if name == "functools.partial" and expr.args:
                return self._resolve_callable(expr.args[0], ctx, project)
            return []
        if isinstance(expr, ast.Attribute):
            dotted = ctx.resolve_call_name(expr)
            if dotted:
                hit = project.resolve_function(dotted)
                return [hit] if hit else []
        return []

    @staticmethod
    def _any_def(ctx: ModuleContext, name: str) -> Optional[ast.AST]:
        """First def bound to ``name`` anywhere in the module (incl. nested)."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None

    # -- reachability + mutation scan ----------------------------------

    def _walk_reachable(
        self,
        roots: List[Tuple[ModuleContext, ast.AST]],
        project,
        entry_desc: str,
        reported: Set[Tuple[str, int, str]],
    ) -> Iterator[Finding]:
        queue: List[Tuple[ModuleContext, ast.AST, int]] = [
            (c, n, 0) for c, n in roots
        ]
        visited: Set[Tuple[str, int, int]] = set()
        while queue:
            fn_ctx, fn_node, depth = queue.pop(0)
            key = (fn_ctx.path, fn_node.lineno, fn_node.col_offset)
            if key in visited or len(visited) >= _MAX_REACH_FNS:
                continue
            visited.add(key)
            yield from self._check_mutations(
                fn_ctx, fn_node, project, entry_desc, reported
            )
            if depth >= _MAX_REACH_DEPTH:
                continue
            for node in ast.walk(fn_node):
                if isinstance(node, ast.Call):
                    for callee in self._resolve_callable(
                        node.func, fn_ctx, project
                    ):
                        queue.append((callee[0], callee[1], depth + 1))

    def _check_mutations(
        self,
        ctx: ModuleContext,
        func: ast.AST,
        project,
        entry_desc: str,
        reported: Set[Tuple[str, int, str]],
    ) -> Iterator[Finding]:
        summary = project.summary(ctx)
        declared_global: Set[str] = set()
        declared_nonlocal: Set[str] = set()
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, ast.Nonlocal):
                    declared_nonlocal.update(node.names)
        local = _bound_names(func) - declared_global - declared_nonlocal
        fname = getattr(func, "name", "<lambda>")

        def shared(name: Optional[str]) -> bool:
            return (
                name is not None
                and name not in local
                and (
                    name in summary.module_level_names
                    or name in declared_global
                )
            )

        def emit(node: ast.AST, name: str, what: str) -> Optional[Finding]:
            key = (ctx.path, node.lineno, name)
            if key in reported:
                return None
            reported.add(key)
            return Finding(
                rule=self.rule_id,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"worker function '{fname}' {what} — reached from "
                    f"{entry_desc}; thread state through arguments and "
                    "return values instead"
                ),
                severity=self.severity,
                end_line=getattr(node, "end_lineno", None) or node.lineno,
            )

        for stmt in body:
            for node in ast.walk(stmt):
                finding = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            scope = (
                                "module-level"
                                if target.id in declared_global
                                else "enclosing-scope"
                                if target.id in declared_nonlocal
                                else None
                            )
                            if scope is not None:
                                finding = emit(
                                    node, target.id,
                                    f"rebinds {scope} name '{target.id}'",
                                )
                        elif isinstance(target, (ast.Subscript, ast.Attribute)):
                            root = _root_name(target.value)
                            if shared(root):
                                finding = emit(
                                    node, root,
                                    "mutates module-level state "
                                    f"'{ast.unparse(target)}'",
                                )
                        if finding is not None:
                            break
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            root = _root_name(target.value)
                            if shared(root):
                                finding = emit(
                                    node, root,
                                    "deletes from module-level state "
                                    f"'{ast.unparse(target)}'",
                                )
                                break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    root = _root_name(node.func.value)
                    if shared(root) and ctx.resolve_call_name(node.func) is None:
                        finding = emit(
                            node, root,
                            f"calls mutating '{ast.unparse(node.func)}()' on "
                            "module-level state",
                        )
                if finding is not None:
                    yield finding

    def _check_capture(
        self,
        ctx: ModuleContext,
        func: ast.AST,
        project,
        entry_desc: str,
        reported: Set[Tuple[str, int, str]],
    ) -> Iterator[Finding]:
        summary = project.summary(ctx)
        local = _bound_names(func)
        fname = getattr(func, "name", "<lambda>")
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in local
                    and node.id in summary.mutable_globals
                ):
                    key = (ctx.path, node.lineno, node.id)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        rule=self.rule_id,
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"worker closure '{fname}' captures mutable "
                            f"module-level '{node.id}' — reached from "
                            f"{entry_desc}; pass it as an argument or make "
                            "it immutable"
                        ),
                        severity=self.severity,
                        end_line=getattr(node, "end_lineno", None)
                        or node.lineno,
                    )


#: Constructors whose instances own shared-memory lifecycles.
_SHM_CONSTRUCTORS = {
    "repro.backend.shm.ShmArena",
    "multiprocessing.shared_memory.SharedMemory",
}


class ShmLifecycleRule(Rule):
    """CM012: no shm use after close, no handles escaping their arena.

    Straight-line lifecycle tracking per function scope, for names bound
    to ``ShmArena()`` / ``SharedMemory()`` (resolved through imports, so
    the defining module itself is naturally exempt):

    - after ``x.close()`` / ``x.unlink()``, any later use of ``x`` on the
      same straight-line path is flagged (an extra idempotent
      close/unlink is allowed; rebinding ``x`` resets tracking). Branches
      merge pessimistically: a close on *any* path poisons the join.
    - inside ``with ShmArena() as a:``, returning or yielding the arena
      or a name assigned from one of its method calls (``a.share(...)``)
      escapes the handle past the arena's unlink — as does using such a
      name after the ``with`` block exits.

    Deliberate blind spots: loop-carried closes (close in a loop body,
    use at the next iteration's top), aliasing through containers, and
    views outliving an *explicit* ``close()`` — the lease machinery keeps
    those readable until GC, which is documented behaviour.
    """

    rule_id = "CM012"
    title = "shared-memory lifecycle misuse"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        scopes: List[List[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            state = _ShmState()
            self._walk_block(ctx, body, state, findings)
        findings.sort(key=lambda f: (f.line, f.col))
        yield from findings

    # -- state ---------------------------------------------------------

    def _is_shm_ctor(self, ctx: ModuleContext, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and ctx.resolve_call_name(expr.func) in _SHM_CONSTRUCTORS
        )

    @staticmethod
    def _loads(expr: ast.expr) -> Set[str]:
        return {
            n.id
            for n in ast.walk(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }

    def _derived_from(self, state: "_ShmState", expr: ast.expr) -> Optional[str]:
        """Arena a value expression derives a handle from, if any.

        Direct arena method calls (``a.share(x)``), aliases of tainted
        names, and containers/comprehensions of either. Values produced
        by *other* functions fed tainted arguments are not tracked —
        consumers usually return plain data, and flagging them would
        drown the signal.
        """
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                root = _root_name(node.func.value)
                if root is not None and root in state.arenas:
                    return root
        if isinstance(expr, ast.Name) and expr.id in state.tainted:
            return state.tainted[expr.id]
        return None

    def _check_uses(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        state: "_ShmState",
        findings: List[Finding],
        skip: Set[str] = frozenset(),
    ) -> None:
        for name in sorted(self._loads(node) - skip):
            if name in state.closed:
                findings.append(
                    self._finding(
                        ctx, node,
                        f"'{name}' used after close()/unlink() on line "
                        f"{state.closed[name]} — every straight-line path "
                        "must finish with the segment before releasing it",
                    )
                )
            elif name in state.leaked:
                findings.append(
                    self._finding(
                        ctx, node,
                        f"shm handle '{name}' outlives its arena's with "
                        f"block (closed on line {state.leaked[name]}) — "
                        "new attachers can no longer resolve it",
                    )
                )

    def _finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
            end_line=getattr(node, "end_lineno", None) or line,
        )

    # -- block walking -------------------------------------------------

    def _walk_block(
        self,
        ctx: ModuleContext,
        stmts: Sequence[ast.stmt],
        state: "_ShmState",
        findings: List[Finding],
        escape_watch: Optional[Set[str]] = None,
    ) -> None:
        for node in stmts:
            self._walk_stmt(ctx, node, state, findings, escape_watch)

    def _walk_stmt(
        self,
        ctx: ModuleContext,
        node: ast.stmt,
        state: "_ShmState",
        findings: List[Finding],
        escape_watch: Optional[Set[str]],
    ) -> None:
        if isinstance(node, ast.Assign):
            self._check_uses(ctx, node.value, state, findings)
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if self._is_shm_ctor(ctx, node.value):
                for name in names:
                    state.bind_arena(name)
            else:
                arena = self._derived_from(state, node.value)
                for name in names:
                    state.rebind(name)
                    if arena is not None:
                        state.tainted[name] = arena
                        if escape_watch is not None and arena in escape_watch:
                            escape_watch.add(name)
            return
        if isinstance(node, (ast.Return, ast.Expr)) and isinstance(
            getattr(node, "value", None), (ast.Yield, ast.YieldFrom)
        ) or isinstance(node, ast.Return):
            value = node.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                value = value.value
            if value is not None:
                self._check_uses(ctx, value, state, findings)
                if escape_watch:
                    hit = sorted(self._loads(value) & escape_watch)
                    if hit:
                        findings.append(
                            self._finding(
                                ctx, node,
                                f"shm handle '{hit[0]}' escapes its arena's "
                                "with scope — the arena unlinks on exit, so "
                                "receivers cannot attach; share into a "
                                "longer-lived arena instead",
                            )
                        )
            return
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("close", "unlink")
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in state.arenas
            ):
                # Idempotent re-close of an already-closed segment is fine.
                self._check_uses(
                    ctx, call, state, findings, skip={call.func.value.id}
                )
                state.closed[call.func.value.id] = node.lineno
                return
            self._check_uses(ctx, node.value, state, findings)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._walk_with(ctx, node, state, findings, escape_watch)
            return
        if isinstance(node, ast.If):
            self._check_uses(ctx, node.test, state, findings)
            then_state = state.copy()
            else_state = state.copy()
            self._walk_block(ctx, node.body, then_state, findings, escape_watch)
            self._walk_block(ctx, node.orelse, else_state, findings, escape_watch)
            state.merge(then_state, else_state)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            header = node.iter if isinstance(node, (ast.For, ast.AsyncFor)) \
                else node.test
            self._check_uses(ctx, header, state, findings)
            body_state = state.copy()
            self._walk_block(ctx, node.body, body_state, findings, escape_watch)
            self._walk_block(ctx, node.orelse, body_state, findings, escape_watch)
            state.merge(body_state)
            return
        if isinstance(node, ast.Try):
            self._walk_block(ctx, node.body, state, findings, escape_watch)
            for handler in node.handlers:
                handler_state = state.copy()
                self._walk_block(
                    ctx, handler.body, handler_state, findings, escape_watch
                )
                state.merge(handler_state)
            self._walk_block(ctx, node.orelse, state, findings, escape_watch)
            self._walk_block(ctx, node.finalbody, state, findings, escape_watch)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are walked as their own top-level scope
        self._check_uses(ctx, node, state, findings)

    def _walk_with(
        self,
        ctx: ModuleContext,
        node: ast.stmt,
        state: "_ShmState",
        findings: List[Finding],
        escape_watch: Optional[Set[str]],
    ) -> None:
        opened: List[str] = []
        for item in node.items:
            self._check_uses(ctx, item.context_expr, state, findings)
            if item.optional_vars is None or not isinstance(
                item.optional_vars, ast.Name
            ):
                continue
            name = item.optional_vars.id
            is_arena_expr = self._is_shm_ctor(ctx, item.context_expr) or (
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in state.arenas
            )
            if is_arena_expr:
                state.bind_arena(name)
                opened.append(name)
            else:
                state.rebind(name)
        watch = set(escape_watch or set()) | set(opened)
        self._walk_block(ctx, node.body, state, findings, watch)
        # The with-exit closes these arenas and unlinks their segments.
        for name in opened:
            state.closed[name] = node.end_lineno or node.lineno
        for name, arena in sorted(state.tainted.items()):
            if arena in opened:
                state.leaked[name] = node.end_lineno or node.lineno


class _ShmState:
    """Lifecycle facts along one straight-line path."""

    def __init__(self) -> None:
        self.arenas: Set[str] = set()
        self.closed: Dict[str, int] = {}
        self.tainted: Dict[str, str] = {}
        self.leaked: Dict[str, int] = {}

    def bind_arena(self, name: str) -> None:
        self.rebind(name)
        self.arenas.add(name)

    def rebind(self, name: str) -> None:
        self.arenas.discard(name)
        self.closed.pop(name, None)
        self.tainted.pop(name, None)
        self.leaked.pop(name, None)

    def copy(self) -> "_ShmState":
        clone = _ShmState()
        clone.arenas = set(self.arenas)
        clone.closed = dict(self.closed)
        clone.tainted = dict(self.tainted)
        clone.leaked = dict(self.leaked)
        return clone

    def merge(self, *branches: "_ShmState") -> None:
        """Pessimistic join: closed/leaked on any branch stays closed."""
        for branch in branches:
            self.arenas |= branch.arenas
            for name, line in branch.closed.items():
                self.closed.setdefault(name, line)
            self.tainted.update(branch.tainted)
            for name, line in branch.leaked.items():
                self.leaked.setdefault(name, line)


#: Stage entry points the dataflow planner owns. Bare names are resolved
#: through the module's imports; ``self.``-rooted chains are matched on
#: their dotted tail (the pipeline's stage components).
_STAGE_ENTRY_BARE = {
    "select_keyframes",
    "prefetch_surf",
    "reconstruct_skeleton",
    "calibrate_drift",
    "register_candidates",
}
_STAGE_ENTRY_ATTR = {
    "aggregator.aggregate",
    "panorama_builder.build",
    "layout_estimator.estimate",
    "assembler.arrange",
}

#: The sanctioned homes for direct stage calls inside the pipeline
#: module: the legacy cascade (kept as the planner's byte-identity
#: reference) and the per-item producers the planner itself executes
#: nodes through.
_STAGE_CALL_SANCTUARY = {
    "anchor_session",
    "build_pathway",
    "build_room",
    "build_rooms",
    "run_sessions_legacy",
}


class CascadeRegrowthRule(Rule):
    """CM013: stage calls in ``core/pipeline.py`` must stay in the cascade.

    PR 8 lifted reconstruction out of the fixed cascade into the dataflow
    graph (``repro.dataflow``): ``run_sessions`` plans nodes, and only
    the sanctioned legacy-cascade methods (plus the per-item producers
    the planner executes nodes through) may call stage entry points
    directly. A stage call sprouting anywhere else in the pipeline module
    is the fixed cascade silently regrowing — it would execute outside
    the graph, invisible to content-keyed skipping and the
    node-execution telemetry. **Advisory**: a deliberate bypass is
    conceivable (debugging harnesses), but it needs an ``allow[CM013]``
    pragma explaining why the call must not be a graph node.

    Deliberate blind spots: modules other than ``core/pipeline.py`` (the
    planner itself executes stages, legitimately), and dynamic dispatch
    (``getattr``) — this guards against the honest mistake, not evasion.
    """

    rule_id = "CM013"
    title = "stage call bypasses the dataflow graph"
    severity = "advisory"

    @staticmethod
    def _dotted_tail(func: ast.expr) -> Optional[str]:
        """Dotted call-target path with its root name (``self`` kept)."""
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)

    def _is_stage_call(self, node: ast.Call) -> bool:
        dotted = self._dotted_tail(node.func)
        if dotted is None:
            return False
        parts = dotted.split(".")
        if parts[-1] in _STAGE_ENTRY_BARE:
            return True
        tail = ".".join(parts[-2:])
        return tail in _STAGE_ENTRY_ATTR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parts = ctx.path.replace("\\", "/").split("/")
        if len(parts) < 2 or parts[-2:] != ["core", "pipeline.py"]:
            return
        sanctioned: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _STAGE_CALL_SANCTUARY
            ):
                for inner in ast.walk(node):
                    sanctioned.add(id(inner))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in sanctioned:
                continue
            if self._is_stage_call(node):
                dotted = self._dotted_tail(node.func)
                yield self.finding(
                    ctx, node,
                    f"'{dotted}' runs a reconstruction stage outside the "
                    "sanctioned cascade methods — route it through the "
                    "dataflow graph (a planner node), or allowlist with "
                    "the reason it must bypass the planner",
                )


ALL_RULES: Sequence[Rule] = (
    UnseededRngRule(),
    WallClockRule(),
    SwallowedExceptionRule(),
    FloatEqualityRule(),
    ConfigFieldRule(),
    ElementwiseLoopRule(),
    RealTimeWaitRule(),
    EvalClockRule(),
    LayeringRule(),
    ParallelSafetyRule(),
    ShmLifecycleRule(),
    CascadeRegrowthRule(),
)
