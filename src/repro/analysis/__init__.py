"""crowdlint: repo-native static analysis for the CrowdMap reproduction.

Generic linters cannot express the invariants this codebase depends on —
deterministic seeded RNG threading, injectable clocks, the quarantine
failure-reporting contract from the fault-tolerance layer, float-equality
hygiene in geometry code, statically-valid ``CrowdMapConfig`` field
references, and (since the whole-program pass) cross-module contracts:
architecture layering, parallel-worker safety and shared-memory
lifecycles. ``repro.analysis`` encodes them as AST rules (pure stdlib
``ast``, no third-party dependency) and runs as a CI gate next to ruff
and mypy:

    python -m repro.analysis src

Rules
-----
========  ==============================================================
CM001     no unseeded ``np.random.default_rng()`` / module-level
          ``np.random.*`` in library code — thread an explicit
          ``Generator`` (reproducibility of Fig. 7a depends on it)
CM002     no wall-clock reads (``time.time``, ``datetime.now``) in
          algorithmic modules; monotonic ``perf_counter`` is fine
CM003     no ``except Exception`` that swallows the error without
          recording it (the PR-1 quarantine invariant)
CM004     no ``==``/``!=`` against float literals
CM005     ``CrowdMapConfig`` field references in ``with_overrides`` and
          constructor calls must name a real dataclass field
CM006     *(advisory)* no element-wise array loops in ``repro.vision``
          kernels — the hot path stays vectorized; genuinely sequential
          loops carry an ``allow[CM006]`` pragma with the reason
CM007     *(advisory)* no real-time waits (``time.sleep``,
          ``asyncio.sleep``) in ``repro.serving`` — the serving layer
          runs entirely on the virtual clock, which is what makes its
          SLO reports bit-reproducible per seed
CM008     no clock reads or waits in ``repro.eval`` — the accuracy gate
          bit-compares scorecards against the committed
          ``ACCURACY_baseline.json``, so even monotonic durations
          (allowed elsewhere by CM002) are banned there
CM010     architecture layering: the declared layer stack
          (core/geometry/sensors -> vision -> world/baselines ->
          eval/bench -> backend -> serving/analysis) only permits
          downward imports; ``TYPE_CHECKING`` imports are exempt, and
          violations name the offending edge with its import chain
CM011     parallel safety: functions reachable from ``map_parallel`` /
          ``map_with_failures`` / process-pool submission must not
          mutate module-level or enclosing-scope state, and worker
          closures must not capture mutable globals
CM012     shm lifecycle: no ``ShmArena``/``SharedMemory`` use after
          ``close()``/``unlink()`` along any straight-line path, and no
          handles escaping their arena's ``with`` scope
========  ==============================================================

CM001-CM008 are per-file rules; CM010-CM012 are *project* rules driven
by a whole-program pass (:mod:`repro.analysis.project`) that parses every
module once, resolves relative imports against each file's package, and
builds the import graph (:mod:`repro.analysis.graph`).

Severities: every rule is an **error** (fails the CLI with exit 1)
except CM006 and CM007, which are **advisory** — reported, counted, but
never a build failure, because "could this loop vectorize?" and "is this
wait ever legitimate?" are judgement calls.

A finding is suppressed by an inline pragma **with a reason** — placed on
any physical line of the flagged statement, or the line directly above::

    denom == 0.0  # crowdlint: allow[CM004] exact parallel test on cross product

A pragma without a reason is itself an error (CM000). Pre-existing
violations accepted with a written reason live in the committed
``.crowdlint-baseline.json`` (:mod:`repro.analysis.baseline`); anything
new still gates.

Lint runs are incremental (:mod:`repro.analysis.cache`): per-file
findings are cached keyed on source sha1 + rule-set version, warm runs
are byte-identical to cold, and ``--format sarif``
(:mod:`repro.analysis.sarif`) feeds GitHub code scanning. The README rule
table is generated from rule metadata (:mod:`repro.analysis.catalog`).
"""

from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import CacheStats, cached_lint
from repro.analysis.catalog import render_rule_table, update_readme
from repro.analysis.engine import (
    Finding,
    ImportStmt,
    ModuleContext,
    ProjectRule,
    Rule,
    check_module,
    format_findings,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.analysis.graph import (
    LAYERS,
    ImportGraph,
    build_import_graph,
    layer_of,
)
from repro.analysis.project import ModuleSummary, ProjectContext
from repro.analysis.rules import ALL_RULES, RULES_VERSION
from repro.analysis.sarif import format_sarif, to_sarif

__all__ = [
    "ALL_RULES",
    "BaselineEntry",
    "BaselineError",
    "CacheStats",
    "Finding",
    "ImportGraph",
    "ImportStmt",
    "LAYERS",
    "ModuleContext",
    "ModuleSummary",
    "ProjectContext",
    "ProjectRule",
    "RULES_VERSION",
    "Rule",
    "apply_baseline",
    "build_import_graph",
    "cached_lint",
    "check_module",
    "find_baseline",
    "format_findings",
    "format_sarif",
    "layer_of",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "render_rule_table",
    "to_sarif",
    "update_readme",
    "write_baseline",
]
