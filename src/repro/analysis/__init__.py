"""crowdlint: repo-native static analysis for the CrowdMap reproduction.

Generic linters cannot express the invariants this codebase depends on —
deterministic seeded RNG threading, injectable clocks, the quarantine
failure-reporting contract from the fault-tolerance layer, float-equality
hygiene in geometry code, and statically-valid ``CrowdMapConfig`` field
references in sweeps and ablations. ``repro.analysis`` encodes them as
AST rules (pure stdlib ``ast``, no third-party dependency) and runs as a
CI gate next to ruff and mypy:

    python -m repro.analysis src

Rules
-----
========  ==============================================================
CM001     no unseeded ``np.random.default_rng()`` / module-level
          ``np.random.*`` in library code — thread an explicit
          ``Generator`` (reproducibility of Fig. 7a depends on it)
CM002     no wall-clock reads (``time.time``, ``datetime.now``) in
          algorithmic modules; monotonic ``perf_counter`` is fine
CM003     no ``except Exception`` that swallows the error without
          recording it (the PR-1 quarantine invariant)
CM004     no ``==``/``!=`` against float literals
CM005     ``CrowdMapConfig`` field references in ``with_overrides`` and
          constructor calls must name a real dataclass field
CM006     *(advisory)* no element-wise array loops in ``repro.vision``
          kernels — the hot path stays vectorized; genuinely sequential
          loops carry an ``allow[CM006]`` pragma with the reason
CM007     *(advisory)* no real-time waits (``time.sleep``,
          ``asyncio.sleep``) in ``repro.serving`` — the serving layer
          runs entirely on the virtual clock, which is what makes its
          SLO reports bit-reproducible per seed
CM008     no clock reads or waits in ``repro.eval`` — the accuracy gate
          bit-compares scorecards against the committed
          ``ACCURACY_baseline.json``, so even monotonic durations
          (allowed elsewhere by CM002) are banned there
========  ==============================================================

Severities: every rule is an **error** (fails the CLI with exit 1)
except CM006 and CM007, which are **advisory** — reported, counted, but
never a build failure, because "could this loop vectorize?" and "is this
wait ever legitimate?" are judgement calls.

A finding is suppressed by an inline pragma **with a reason**::

    denom == 0.0  # crowdlint: allow[CM004] exact parallel test on cross product

A pragma without a reason is itself an error (CM000).
"""

from repro.analysis.engine import (
    Finding,
    ModuleContext,
    Rule,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "format_findings",
    "lint_paths",
    "lint_source",
]
