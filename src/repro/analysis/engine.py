"""The crowdlint engine: file discovery, pragma allowlist, rule driving.

The engine is deliberately small: a :class:`ModuleContext` parses one file
and pre-computes what every rule needs (the AST, import aliases, pragma
lines), rules yield :class:`Finding` objects, and :func:`lint_paths` wires
discovery + suppression together. Everything is pure stdlib so the linter
itself can never be the reason the dependency surface grows.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: ``# crowdlint: allow[CM001,CM004] reason text`` — the reason is mandatory;
#: an empty reason is reported as CM000 instead of suppressing anything.
_PRAGMA_RE = re.compile(
    r"#\s*crowdlint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?:--\s*)?(?P<reason>.*)$"
)


#: Finding severities. ``error`` findings fail the CLI (exit 1);
#: ``advisory`` findings are reported but never gate a build.
SEVERITIES = ("error", "advisory")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def __str__(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} "
            f"{self.message}"
        )


@dataclass(frozen=True)
class Pragma:
    """A parsed ``crowdlint: allow[...]`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class Rule:
    """Base class for crowdlint rules.

    Subclasses set :attr:`rule_id` / :attr:`title` and implement
    :meth:`check`, yielding findings for one module. Rules must not mutate
    the context.
    """

    rule_id: str = "CM000"
    title: str = ""
    severity: str = "error"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


class ModuleContext:
    """One parsed source file plus the lookups rules share.

    ``import_aliases`` maps local names to the dotted module they are bound
    to (``np`` -> ``numpy``, ``dt`` -> ``datetime``); ``from_imports`` maps
    local names to fully-qualified origins (``default_rng`` ->
    ``numpy.random.default_rng``). Both let rules resolve a call like
    ``np.random.default_rng()`` to its canonical dotted path regardless of
    how the module spelled the import.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.pragmas: Dict[int, Pragma] = {}
        self.malformed_pragmas: List[Pragma] = []
        self._parse_pragmas()
        self.import_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self._collect_imports()

    # -- pragmas -------------------------------------------------------

    def _parse_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                r.strip().upper() for r in match.group("rules").split(",") if r.strip()
            )
            pragma = Pragma(line=lineno, rules=rules, reason=match.group("reason").strip())
            if pragma.reason:
                self.pragmas[lineno] = pragma
            else:
                self.malformed_pragmas.append(pragma)

    def allowed(self, rule_id: str, line: int) -> bool:
        """True when a well-formed pragma on ``line`` covers ``rule_id``."""
        pragma = self.pragmas.get(line)
        return pragma is not None and rule_id in pragma.rules

    # -- import resolution ---------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.import_aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call_name(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted path of a call target, or None if not static.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a bare ``default_rng`` resolves via
        ``from numpy.random import default_rng``. Attribute chains rooted
        at anything other than an imported module (e.g. ``self.rng.normal``)
        resolve to None, which rules treat as "not a module-level call".
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        else:
            return None
        parts.reverse()
        root = parts[0]
        if root in self.from_imports:
            return ".".join([self.from_imports[root]] + parts[1:])
        if root in self.import_aliases:
            return ".".join([self.import_aliases[root]] + parts[1:])
        return None


def _iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if any(part.startswith(".") for part in candidate.parts):
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                yield candidate


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string; the unit every test fixture goes through."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="CM000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error prevents analysis: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for pragma in ctx.malformed_pragmas:
        findings.append(
            Finding(
                rule="CM000",
                path=path,
                line=pragma.line,
                col=0,
                message=(
                    "allow pragma is missing a reason — write "
                    "'# crowdlint: allow[%s] <why this is safe>'"
                    % ",".join(pragma.rules)
                ),
            )
        )
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.allowed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path), rules=rules))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one ``path:line:col: RULE message`` per line."""
    if not findings:
        return "crowdlint: no findings"
    lines = [str(f) for f in findings]
    advisory = sum(1 for f in findings if f.severity == "advisory")
    summary = f"crowdlint: {len(findings)} finding(s)"
    if advisory:
        summary += f" ({len(findings) - advisory} error, {advisory} advisory)"
    lines.append(summary)
    return "\n".join(lines)
