"""The crowdlint engine: file discovery, pragma allowlist, rule driving.

The engine is deliberately small: a :class:`ModuleContext` parses one file
and pre-computes what every rule needs (the AST, import aliases, pragma
lines), rules yield :class:`Finding` objects, and :func:`lint_paths` wires
discovery + suppression together. Everything is pure stdlib so the linter
itself can never be the reason the dependency surface grows.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: ``# crowdlint: allow[CM001,CM004] reason text`` — the reason is mandatory;
#: an empty reason is reported as CM000 instead of suppressing anything.
_PRAGMA_RE = re.compile(
    r"#\s*crowdlint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?:--\s*)?(?P<reason>.*)$"
)


#: Finding severities. ``error`` findings fail the CLI (exit 1);
#: ``advisory`` findings are reported but never gate a build.
SEVERITIES = ("error", "advisory")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``end_line`` is the last physical line of the flagged node (equal to
    ``line`` for single-line constructs); pragma suppression honours the
    whole span, and SARIF output carries it as ``region.endLine``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    end_line: int = 0

    @property
    def span_end(self) -> int:
        return max(self.end_line, self.line)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def __str__(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} "
            f"{self.message}"
        )


@dataclass(frozen=True)
class Pragma:
    """A parsed ``crowdlint: allow[...]`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class ImportStmt:
    """One resolved import edge out of a module.

    ``module`` is the absolute dotted target (relative imports are
    resolved against the file's package); ``name`` is the bound name for
    ``from X import name`` forms — it may itself address a submodule, so
    graph construction tries ``module.name`` before falling back to
    ``module``. ``type_checking`` marks imports inside an
    ``if TYPE_CHECKING:`` block (annotation-only, never a runtime edge);
    ``lazy`` marks imports inside a function body (a runtime edge, just a
    deferred one).
    """

    module: str
    name: Optional[str]
    line: int
    end_line: int
    type_checking: bool = False
    lazy: bool = False


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name of a real file, via the ``__init__.py`` chain.

    ``src/repro/vision/hog.py`` resolves to ``repro.vision.hog`` because
    every directory from ``repro`` down carries an ``__init__.py`` while
    ``src`` does not. Returns None for paths that do not exist (fixture
    strings fed to :func:`lint_source`) or top-level scripts outside any
    package.
    """
    p = Path(path)
    if p.suffix != ".py" or not p.is_file():
        return None
    p = p.resolve()
    parts: List[str] = [] if p.stem == "__init__" else [p.stem]
    current = p.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        if current.parent == current:
            break
        current = current.parent
    return ".".join(parts) if parts else None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


class Rule:
    """Base class for crowdlint rules.

    Subclasses set :attr:`rule_id` / :attr:`title` and implement
    :meth:`check`, yielding findings for one module. Rules must not mutate
    the context.
    """

    rule_id: str = "CM000"
    title: str = ""
    severity: str = "error"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
            end_line=getattr(node, "end_lineno", None) or line,
        )


class ProjectRule(Rule):
    """A rule that needs the whole-program view.

    Subclasses implement :meth:`check_project`, which receives the module
    under scrutiny *and* the :class:`~repro.analysis.project.ProjectContext`
    holding every parsed module plus the import graph. Findings must be
    anchored in ``ctx``'s file — the incremental cache stores project-rule
    findings per file, invalidated whenever any project file changes.
    """

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise TypeError(
            f"{self.rule_id} is a project rule; drive it via check_project()"
        )

    def check_project(self, ctx: "ModuleContext", project) -> Iterator[Finding]:
        raise NotImplementedError


class ModuleContext:
    """One parsed source file plus the lookups rules share.

    ``import_aliases`` maps local names to the dotted module they are bound
    to (``np`` -> ``numpy``, ``dt`` -> ``datetime``); ``from_imports`` maps
    local names to fully-qualified origins (``default_rng`` ->
    ``numpy.random.default_rng``). Both let rules resolve a call like
    ``np.random.default_rng()`` to its canonical dotted path regardless of
    how the module spelled the import.
    """

    def __init__(self, path: str, source: str, module_name: Optional[str] = None):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.module_name = module_name or module_name_for_path(path)
        self.package = self._package_of(path, self.module_name)
        self.pragmas: Dict[int, Pragma] = {}
        self.malformed_pragmas: List[Pragma] = []
        self._parse_pragmas()
        self.import_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self.imports: List[ImportStmt] = []
        self._collect_imports()

    @staticmethod
    def _package_of(path: str, module_name: Optional[str]) -> str:
        """Containing package of this module ('' when unknown)."""
        if not module_name:
            return ""
        if Path(path).stem == "__init__":
            return module_name
        return module_name.rsplit(".", 1)[0] if "." in module_name else ""

    # -- pragmas -------------------------------------------------------

    def _parse_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                r.strip().upper() for r in match.group("rules").split(",") if r.strip()
            )
            pragma = Pragma(line=lineno, rules=rules, reason=match.group("reason").strip())
            if pragma.reason:
                self.pragmas[lineno] = pragma
            else:
                self.malformed_pragmas.append(pragma)

    def allowed(self, rule_id: str, line: int, end_line: Optional[int] = None) -> bool:
        """True when a well-formed pragma covers ``rule_id`` for this span.

        A pragma suppresses a finding when it sits on any physical line of
        the flagged node (``line`` through ``end_line`` — so a pragma on the
        first line of a multi-line call works wherever the finding anchors)
        or on the line directly above the node.
        """
        last = max(end_line or line, line)
        for candidate in range(max(line - 1, 1), last + 1):
            pragma = self.pragmas.get(candidate)
            if pragma is not None and rule_id in pragma.rules:
                return True
        return False

    # -- import resolution ---------------------------------------------

    def _resolve_relative(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted target of a relative import, or None.

        ``from .foo import bar`` in package ``repro.vision`` resolves to
        ``repro.vision.foo``; each extra leading dot climbs one package.
        Unresolvable when the file's package is unknown (string fixtures)
        or the import climbs past the top of the package.
        """
        if not self.package:
            return None
        parts = self.package.split(".")
        climb = node.level - 1
        if climb > len(parts):
            return None
        base = parts[: len(parts) - climb] if climb else parts
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _collect_imports(self) -> None:
        self._walk_imports(self.tree.body, type_checking=False, lazy=False)

    def _record_from_import(
        self, node: ast.ImportFrom, target: str, type_checking: bool, lazy: bool
    ) -> None:
        for alias in node.names:
            if alias.name != "*":
                self.from_imports[alias.asname or alias.name] = (
                    f"{target}.{alias.name}"
                )
            self.imports.append(
                ImportStmt(
                    module=target,
                    name=None if alias.name == "*" else alias.name,
                    line=node.lineno,
                    end_line=node.end_lineno or node.lineno,
                    type_checking=type_checking,
                    lazy=lazy,
                )
            )

    def _walk_imports(
        self, stmts: Sequence[ast.stmt], type_checking: bool, lazy: bool
    ) -> None:
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.import_aliases[root] = root
                    self.imports.append(
                        ImportStmt(
                            module=alias.name,
                            name=None,
                            line=node.lineno,
                            end_line=node.end_lineno or node.lineno,
                            type_checking=type_checking,
                            lazy=lazy,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                target = (
                    node.module
                    if node.level == 0
                    else self._resolve_relative(node)
                )
                if target:
                    self._record_from_import(node, target, type_checking, lazy)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_imports(node.body, type_checking, lazy=True)
            elif isinstance(node, ast.If):
                tc = type_checking or _is_type_checking_test(node.test)
                self._walk_imports(node.body, tc, lazy)
                self._walk_imports(node.orelse, type_checking, lazy)
            elif isinstance(node, ast.ClassDef):
                self._walk_imports(node.body, type_checking, lazy)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                self._walk_imports(node.body, type_checking, lazy)
                self._walk_imports(node.orelse, type_checking, lazy)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self._walk_imports(node.body, type_checking, lazy)
            elif isinstance(node, ast.Try):
                self._walk_imports(node.body, type_checking, lazy)
                for handler in node.handlers:
                    self._walk_imports(handler.body, type_checking, lazy)
                self._walk_imports(node.orelse, type_checking, lazy)
                self._walk_imports(node.finalbody, type_checking, lazy)

    def resolve_call_name(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted path of a call target, or None if not static.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a bare ``default_rng`` resolves via
        ``from numpy.random import default_rng``. Attribute chains rooted
        at anything other than an imported module (e.g. ``self.rng.normal``)
        resolve to None, which rules treat as "not a module-level call".
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        else:
            return None
        parts.reverse()
        root = parts[0]
        if root in self.from_imports:
            return ".".join([self.from_imports[root]] + parts[1:])
        if root in self.import_aliases:
            return ".".join([self.import_aliases[root]] + parts[1:])
        return None


def _iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if any(part.startswith(".") for part in candidate.parts):
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                yield candidate


def _default_rules() -> Sequence[Rule]:
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


def _syntax_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="CM000",
        path=path,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        message=f"syntax error prevents analysis: {exc.msg}",
    )


def check_module(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    project=None,
) -> List[Finding]:
    """Run every rule against one parsed module, applying pragmas.

    ``project`` is the :class:`~repro.analysis.project.ProjectContext`
    shared by cross-module rules; when None, a degenerate single-module
    project is built on demand so project rules still see intra-module
    hazards.
    """
    findings: List[Finding] = []
    for pragma in ctx.malformed_pragmas:
        findings.append(
            Finding(
                rule="CM000",
                path=ctx.path,
                line=pragma.line,
                col=0,
                message=(
                    "allow pragma is missing a reason — write "
                    "'# crowdlint: allow[%s] <why this is safe>'"
                    % ",".join(pragma.rules)
                ),
            )
        )
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if project is None and project_rules:
        from repro.analysis.project import ProjectContext

        project = ProjectContext.from_contexts([ctx])
    for rule in rules:
        produced = (
            rule.check_project(ctx, project)
            if isinstance(rule, ProjectRule)
            else rule.check(ctx)
        )
        for finding in produced:
            if not ctx.allowed(finding.rule, finding.line, finding.end_line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    module_name: Optional[str] = None,
) -> List[Finding]:
    """Lint one source string; the unit every test fixture goes through."""
    if rules is None:
        rules = _default_rules()
    try:
        ctx = ModuleContext(path, source, module_name=module_name)
    except SyntaxError as exc:
        return [_syntax_error_finding(path, exc)]
    return check_module(ctx, rules)


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    All discovered modules form one project: cross-module rules
    (CM010-CM012) resolve imports, reachability and layer membership over
    exactly this file set. For the cached incremental driver wrapping this
    pass, see :mod:`repro.analysis.cache`.
    """
    from repro.analysis.project import ProjectContext

    if rules is None:
        rules = _default_rules()
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            contexts.append(ModuleContext(str(file_path), source))
        except SyntaxError as exc:
            findings.append(_syntax_error_finding(str(file_path), exc))
    project = ProjectContext.from_contexts(contexts)
    for ctx in contexts:
        findings.extend(check_module(ctx, rules, project=project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one ``path:line:col: RULE message`` per line."""
    if not findings:
        return "crowdlint: no findings"
    lines = [str(f) for f in findings]
    advisory = sum(1 for f in findings if f.severity == "advisory")
    summary = f"crowdlint: {len(findings)} finding(s)"
    if advisory:
        summary += f" ({len(findings) - advisory} error, {advisory} advisory)"
    lines.append(summary)
    return "\n".join(lines)
