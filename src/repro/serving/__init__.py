"""``repro.serving`` — the read path: maps as a queryable service.

The paper's deployment story does not end at reconstruction; the cloud
backend exists so that localization and navigation clients can *consume*
floor plans at scale. This package turns
:class:`~repro.core.incremental.IncrementalCrowdMap` snapshots into a
served system, simulated end to end on a deterministic virtual clock:

- :mod:`repro.serving.snapshot` — copy-on-publish versioned snapshots;
  readers always see one consistent immutable version, never a torn map;
- :mod:`repro.serving.shards` — the corpus partitioned by
  (building, floor), one replicated snapshot store per shard, refresh
  driven by :class:`~repro.backend.scheduler.SimulatedScheduler`;
- :mod:`repro.serving.router` — admission control, bounded queues, load
  shedding and hedged replica reads over a seeded discrete-event loop;
- :mod:`repro.serving.handlers` — ``get_floorplan`` / ``locate`` /
  ``route`` query handlers wrapping the core localization and
  navigation modules;
- :mod:`repro.serving.loadgen` — open-loop Poisson traffic plus the SLO
  tracker (p50/p95/p99 virtual latency, shed rate, per-shard QPS).

Run ``python -m repro serve-sim`` for the end-to-end demonstration, and
see the README's "Serving" section for the architecture sketch.
Everything in this package runs on the virtual clock — crowdlint CM007
flags real-time sleeps here, because one ``time.sleep`` would couple the
simulation's results to the host machine.
"""

from repro.serving.handlers import LocateQuery, QueryHandlers, RouteQuery
from repro.serving.loadgen import (
    LoadProfile,
    PayloadFactory,
    SLOTracker,
    generate_arrivals,
    render_report,
    run_serving_simulation,
)
from repro.serving.router import (
    EventLoop,
    Request,
    RequestOutcome,
    RequestRouter,
    ServingConfig,
)
from repro.serving.shards import MapShard, ShardKey, ShardManager
from repro.serving.snapshot import MapSnapshot, VersionedSnapshotStore

__all__ = [
    "EventLoop",
    "LoadProfile",
    "PayloadFactory",
    "LocateQuery",
    "MapShard",
    "MapSnapshot",
    "QueryHandlers",
    "Request",
    "RequestOutcome",
    "RequestRouter",
    "RouteQuery",
    "SLOTracker",
    "ServingConfig",
    "ShardKey",
    "ShardManager",
    "VersionedSnapshotStore",
    "generate_arrivals",
    "render_report",
    "run_serving_simulation",
]
