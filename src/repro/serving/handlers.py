"""Query handlers: what the serving layer actually answers.

Three queries cover the paper's downstream story ("localization and
navigation" are the opening motivation for having floor plans at all):

- ``get_floorplan`` — the map itself, as a JSON-ready summary plus the
  ASCII rendering clients can display;
- ``locate`` — wraps :class:`~repro.core.localization.VisualLocalizer`:
  one query frame in, a position estimate on the reconstructed map out;
- ``route`` — wraps :mod:`repro.core.navigation`: plan a path from a
  point to a named room over the reconstructed skeleton.

Handlers are stateless; all per-version state (the localization index,
the A* planner) lives on the :class:`~repro.serving.snapshot.MapSnapshot`
so it is built once per published version and shared across replicas and
requests. Every handler takes the snapshot explicitly — the router pins
one version per request, and nothing here can accidentally read a newer
one mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import CrowdMapConfig
from repro.core.localization import LocalizationEstimate
from repro.core.navigation import NavigationPath, route_to_room
from repro.geometry.primitives import Point
from repro.serving.snapshot import MapSnapshot
from repro.vision.image import Frame


@dataclass(frozen=True)
class LocateQuery:
    """Payload of a ``locate`` request: one captured frame."""

    frame: Frame


@dataclass(frozen=True)
class RouteQuery:
    """Payload of a ``route`` request: start point and destination room."""

    start: Point
    room_name: str


class QueryHandlers:
    """Executes serving queries against one pinned snapshot."""

    KINDS = ("get_floorplan", "locate", "route")

    def __init__(self, config: Optional[CrowdMapConfig] = None):
        self.config = config or CrowdMapConfig()

    def handle(self, kind: str, snapshot: MapSnapshot, payload: object):
        """Dispatch by request kind (the router's single entry point)."""
        if kind == "get_floorplan":
            return self.get_floorplan(snapshot)
        if kind == "locate":
            if not isinstance(payload, LocateQuery):
                raise TypeError("locate requires a LocateQuery payload")
            return self.locate(snapshot, payload)
        if kind == "route":
            if not isinstance(payload, RouteQuery):
                raise TypeError("route requires a RouteQuery payload")
            return self.route(snapshot, payload)
        raise ValueError(f"unknown query kind {kind!r}")

    def get_floorplan(self, snapshot: MapSnapshot) -> Dict[str, object]:
        """The published map: version metadata plus a renderable view."""
        view = snapshot.summary()
        if snapshot.result is not None:
            view["ascii"] = snapshot.result.floorplan.render_ascii(max_width=80)
        return view

    def locate(
        self, snapshot: MapSnapshot, query: LocateQuery
    ) -> LocalizationEstimate:
        """Visual localization of one query frame on the pinned version."""
        return snapshot.localizer().localize(query.frame)

    def route(self, snapshot: MapSnapshot, query: RouteQuery) -> NavigationPath:
        """Path from ``query.start`` to the named room on the pinned version."""
        if snapshot.result is None:
            raise ValueError("stub snapshot has no skeleton")
        return route_to_room(
            snapshot.result.floorplan,
            query.start,
            query.room_name,
            navigator=snapshot.navigator(),
        )
