"""Shard management: one incremental reconstruction per (building, floor).

"Serve heavy traffic from millions of users" decomposes naturally along
the corpus: queries for one building's floor never need another floor's
map, so each (building, floor) pair becomes a shard owning its own
:class:`~repro.core.incremental.IncrementalCrowdMap` and a replicated
set of :class:`~repro.serving.snapshot.VersionedSnapshotStore` — one
store per serving replica, all installed with the *same* snapshot object
on publish so the derived query indexes are built once per version.

Refresh is scheduler-driven, exactly like the paper's APScheduler-fed
cascade: :meth:`ShardManager.attach_refresh_job` registers a periodic
job on a :class:`~repro.backend.scheduler.SimulatedScheduler` that
re-snapshots every *dirty* shard (one that ingested sessions since its
last publish) and publishes the result to every replica. Shards that saw
no uploads since the last sweep publish nothing — readers keep the
current version.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.backend.scheduler import ScheduledJob, SimulatedScheduler
from repro.backend.telemetry import TelemetryRegistry, default_registry
from repro.core.config import CrowdMapConfig
from repro.core.incremental import IncrementalCrowdMap
from repro.serving.snapshot import MapSnapshot, VersionedSnapshotStore


class ShardKey(NamedTuple):
    """The partition key: every query and upload names one of these."""

    building: str
    floor: int


class MapShard:
    """One shard: its incremental build state plus replicated read stores."""

    def __init__(
        self,
        key: ShardKey,
        config: Optional[CrowdMapConfig] = None,
        n_replicas: int = 2,
        retain_versions: int = 3,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        if n_replicas < 1:
            raise ValueError("a shard needs at least one replica")
        self.key = key
        self.config = config or CrowdMapConfig()
        self.incremental = IncrementalCrowdMap(self.config)
        self.replicas: Tuple[VersionedSnapshotStore, ...] = tuple(
            VersionedSnapshotStore(key, retain=retain_versions)
            for _ in range(n_replicas)
        )
        self.telemetry = telemetry or default_registry
        self.dirty = False
        self._next_version = 1
        self.sessions_ingested = 0

    def ingest(self, session) -> None:
        """Feed one uploaded session into the shard's incremental build."""
        self.incremental.add_session(session)
        self.sessions_ingested += 1
        self.dirty = True
        self.telemetry.counter(
            "serving_sessions_ingested", "sessions routed into shards"
        ).inc()

    def current(self, replica: int = 0) -> Optional[MapSnapshot]:
        return self.replicas[replica].current()

    def refresh(self, now: float) -> Optional[MapSnapshot]:
        """Re-snapshot and publish to every replica if the shard is dirty.

        Returns the newly published snapshot, or None when there was
        nothing to publish (clean shard, or no SWS content yet).
        """
        if not self.dirty:
            return None
        result = self.incremental.snapshot()
        if result is None:
            return None
        snapshot = MapSnapshot(
            version=self._next_version,
            shard_key=self.key,
            result=result,
            published_at=now,
            config=self.config,
        )
        for store in self.replicas:
            store.install(snapshot)
        self._next_version += 1
        self.dirty = False
        self.telemetry.counter(
            "serving_snapshots_published", "shard snapshot publishes"
        ).inc()
        return snapshot

    def publish_stub(self, now: float) -> MapSnapshot:
        """Publish a content-free snapshot (routing simulations only)."""
        snapshot = MapSnapshot(
            version=self._next_version,
            shard_key=self.key,
            result=None,
            published_at=now,
            config=self.config,
        )
        for store in self.replicas:
            store.install(snapshot)
        self._next_version += 1
        self.dirty = False
        return snapshot


class ShardManager:
    """Owns every shard; routes uploads in and hands shards to the router."""

    def __init__(
        self,
        config: Optional[CrowdMapConfig] = None,
        n_replicas: int = 2,
        retain_versions: int = 3,
        telemetry: Optional[TelemetryRegistry] = None,
    ):
        self.config = config or CrowdMapConfig()
        self.n_replicas = n_replicas
        self.retain_versions = retain_versions
        self.telemetry = telemetry or default_registry
        self._shards: Dict[ShardKey, MapShard] = {}

    def shard_for(self, building: str, floor: int) -> MapShard:
        """The shard owning (building, floor), created on first reference."""
        key = ShardKey(building, int(floor))
        shard = self._shards.get(key)
        if shard is None:
            shard = MapShard(
                key,
                config=self.config,
                n_replicas=self.n_replicas,
                retain_versions=self.retain_versions,
                telemetry=self.telemetry,
            )
            self._shards[key] = shard
            self.telemetry.counter(
                "serving_shards_created", "distinct (building, floor) shards"
            ).inc()
        return shard

    def get(self, key: ShardKey) -> Optional[MapShard]:
        return self._shards.get(key)

    def ingest_session(self, session) -> MapShard:
        """Route an uploaded session to its shard by its own annotations."""
        shard = self.shard_for(session.building, session.floor)
        shard.ingest(session)
        return shard

    def shards(self) -> List[MapShard]:
        """All shards in creation order (deterministic: dict preserves it)."""
        return list(self._shards.values())

    def keys(self) -> List[ShardKey]:
        return list(self._shards.keys())

    def refresh_all(self, now: float) -> List[MapSnapshot]:
        """Refresh every dirty shard; returns the snapshots published."""
        published = []
        for shard in self._shards.values():
            snapshot = shard.refresh(now)
            if snapshot is not None:
                published.append(snapshot)
        return published

    def attach_refresh_job(
        self,
        scheduler: SimulatedScheduler,
        interval: float,
        delay: Optional[float] = None,
    ) -> ScheduledJob:
        """Register the periodic refresh-and-publish sweep on ``scheduler``."""
        return scheduler.add_job(
            "shard_refresh",
            interval,
            lambda: self.refresh_all(scheduler.now),
            delay=delay,
        )
