"""Open-loop load generation and SLO tracking for the serving layer.

The generator is *open-loop* on purpose: arrivals are a Poisson process
(seeded exponential inter-arrival times) that does not slow down when the
system saturates — exactly the regime where closed-loop benchmarks lie
about tail latency, and the regime admission control exists for. All
randomness is drawn up front from one seeded generator, so a profile +
seed names one exact request sequence forever.

The SLO tracker turns the router's outcomes and telemetry into a
JSON-ready report: p50/p95/p99 virtual-clock latency (exact sample
percentiles via :meth:`repro.backend.telemetry.Histogram.percentile`),
shed rate by reason, hedge accounting, per-shard QPS, and the verdict on
the configured p99 SLO. Two runs of the same configuration produce
bit-identical reports — the acceptance test diffs the serialized JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.scheduler import SimulatedScheduler
from repro.backend.telemetry import TelemetryRegistry
from repro.serving.router import (
    EventLoop,
    Request,
    RequestRouter,
    ServingConfig,
)
from repro.serving.shards import ShardKey, ShardManager

#: Report layout version (bump on incompatible changes).
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class LoadProfile:
    """One traffic scenario: how much, of what, for how long."""

    duration: float = 30.0         # virtual seconds of arrivals
    qps: float = 50.0              # mean arrival rate (Poisson)
    seed: int = 0
    #: Query mix; weights need not sum to 1 (normalized internally).
    mix: Dict[str, float] = field(
        default_factory=lambda: {
            "get_floorplan": 0.6,
            "locate": 0.25,
            "route": 0.15,
        }
    )


#: Builds a request payload: ``payload_for(kind, shard_key, rng)``.
PayloadFactory = Callable[[str, ShardKey, np.random.Generator], object]


def generate_arrivals(
    profile: LoadProfile,
    shard_keys: Sequence[ShardKey],
    payload_for: Optional[PayloadFactory] = None,
) -> List[Request]:
    """The full request sequence for one profile (deterministic per seed).

    ``payload_for`` supplies real query payloads (a frame to locate, a
    route destination) drawn from the same seeded generator, so ``real``
    execution stays deterministic; without it payloads are ``None``,
    which modeled execution never reads.
    """
    if not shard_keys:
        raise ValueError("need at least one shard to aim traffic at")
    if profile.qps <= 0:
        raise ValueError("qps must be positive")
    rng = np.random.default_rng(profile.seed)
    kinds = sorted(profile.mix)
    weights = np.array([profile.mix[k] for k in kinds], dtype=float)
    weights /= weights.sum()
    requests: List[Request] = []
    t = 0.0
    request_id = 0
    while True:
        t += float(rng.exponential(1.0 / profile.qps))
        if t >= profile.duration:
            break
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        shard = shard_keys[int(rng.integers(len(shard_keys)))]
        payload = payload_for(kind, shard, rng) if payload_for else None
        requests.append(
            Request(
                request_id=request_id, kind=kind, shard_key=shard,
                arrival=t, payload=payload,
            )
        )
        request_id += 1
    return requests


class SLOTracker:
    """Aggregates one simulation's outcomes into the SLO report."""

    def __init__(
        self,
        router: RequestRouter,
        profile: LoadProfile,
        config: ServingConfig,
        telemetry: TelemetryRegistry,
    ):
        self.router = router
        self.profile = profile
        self.config = config
        self.telemetry = telemetry

    @staticmethod
    def _round_summary(summary: Dict[str, float]) -> Dict[str, float]:
        return {k: round(v, 6) for k, v in sorted(summary.items())}

    def report(self) -> dict:
        outcomes = self.router.outcomes
        offered = len(outcomes)
        admitted = sum(1 for o in outcomes if o.admitted)
        completed = sum(1 for o in outcomes if o.latency is not None)
        shed = offered - admitted
        shed_by_reason: Dict[str, int] = {}
        for outcome in outcomes:
            if outcome.shed_reason:
                shed_by_reason[outcome.shed_reason] = (
                    shed_by_reason.get(outcome.shed_reason, 0) + 1
                )
        versions: Dict[str, int] = {}
        for outcome in outcomes:
            if outcome.version is not None:
                versions[str(outcome.version)] = (
                    versions.get(str(outcome.version), 0) + 1
                )
        overall = self.telemetry.histogram("serving_latency")
        by_kind = {
            kind: self._round_summary(
                self.telemetry.histogram(f"serving_latency_{kind}").summary()
            )
            for kind in sorted(self.profile.mix)
            if self.telemetry.value(f"serving_latency_{kind}") > 0
        }
        per_shard = {}
        for key in self.router.manager.keys():
            count = self.telemetry.value(
                f"serving_shard_{key.building}_{key.floor}_requests"
            )
            per_shard[f"{key.building}/{key.floor}"] = {
                "offered": int(count),
                "qps": round(count / self.profile.duration, 6),
            }
        p99 = overall.percentile(99.0)
        return {
            "schema": REPORT_SCHEMA,
            "profile": {
                "duration": self.profile.duration,
                "qps": self.profile.qps,
                "seed": self.profile.seed,
                "mix": dict(sorted(self.profile.mix.items())),
            },
            "requests": {
                "offered": offered,
                "admitted": admitted,
                "completed": completed,
                "shed": shed,
                "shed_rate": round(shed / offered, 6) if offered else 0.0,
                "shed_by_reason": dict(sorted(shed_by_reason.items())),
            },
            "latency": {
                "overall": self._round_summary(overall.summary()),
                "by_kind": by_kind,
            },
            "hedging": {
                "launched": int(self.telemetry.value("serving_hedges")),
                "wasted": int(self.telemetry.value("serving_hedges_wasted")),
                "skipped": int(self.telemetry.value("serving_hedges_skipped")),
                "won": sum(1 for o in outcomes if o.hedge_won),
            },
            "per_shard": dict(sorted(per_shard.items())),
            "versions_served": dict(sorted(versions.items())),
            "slo": {
                "p99_target": self.config.slo_p99,
                "p99_observed": round(p99, 6),
                "met": bool(p99 <= self.config.slo_p99),
            },
        }


def run_serving_simulation(
    manager: ShardManager,
    config: Optional[ServingConfig] = None,
    profile: Optional[LoadProfile] = None,
    scheduler: Optional[SimulatedScheduler] = None,
    scheduler_tick: float = 1.0,
    execute: str = "model",
    telemetry: Optional[TelemetryRegistry] = None,
    extra_events: Optional[Sequence[Tuple[float, Callable[[], None]]]] = None,
    payload_for: Optional[PayloadFactory] = None,
) -> dict:
    """Drive one full load simulation and return the SLO report.

    ``extra_events`` are (virtual time, callback) pairs injected into the
    same event loop — how a scenario scripts mid-traffic happenings like
    a burst of new uploads landing on a shard.

    Every shard must have a published snapshot before traffic starts
    (otherwise its requests shed as ``no_snapshot`` — which is itself a
    scenario worth simulating, so it is not an error). When a
    ``scheduler`` is given, its virtual clock is pumped in lockstep with
    the event loop every ``scheduler_tick`` virtual seconds, so periodic
    jobs (shard refresh, upload TTL sweeps) fire mid-traffic exactly
    where their intervals say they should.
    """
    config = config or ServingConfig()
    profile = profile or LoadProfile()
    if execute == "real" and payload_for is None:
        needy = [
            k for k, w in profile.mix.items()
            if k != "get_floorplan" and w > 0
        ]
        if needy:
            raise ValueError(
                f"execute='real' with {sorted(needy)} in the mix needs a "
                "payload_for factory (locate wants a frame, route wants a "
                "start + destination); modeled execution does not"
            )
    # A fresh registry per simulation keeps repeated runs bit-identical
    # (the process-wide default registry accumulates across runs).
    telemetry = telemetry or TelemetryRegistry()
    loop = EventLoop()
    router = RequestRouter(
        manager, config=config, loop=loop, telemetry=telemetry, execute=execute
    )
    for request in generate_arrivals(profile, manager.keys(), payload_for):
        loop.schedule(request.arrival, lambda r=request: router.submit(r))
    if scheduler is not None:
        if scheduler_tick <= 0:
            raise ValueError("scheduler_tick must be positive")
        tick_time = scheduler_tick
        while tick_time <= profile.duration:
            loop.schedule(
                tick_time,
                lambda: scheduler.advance(max(0.0, loop.now - scheduler.now)),
            )
            tick_time += scheduler_tick
    for when, callback in extra_events or ():
        loop.schedule(when, callback)
    loop.run()
    return SLOTracker(router, profile, config, telemetry).report()


def render_report(report: dict) -> str:
    """Canonical serialization (what determinism is asserted against)."""
    return json.dumps(report, indent=2, sort_keys=True)
