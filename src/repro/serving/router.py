"""Request routing over a deterministic virtual-clock event loop.

The router is where "millions of users" becomes an engineering problem:
requests arrive faster than replicas drain them, stragglers happen, and
the system must *choose* what to drop. Everything runs on a simulated
event loop — same discipline as
:class:`~repro.backend.scheduler.SimulatedScheduler` — so the behaviour
under a given seed is bit-for-bit reproducible: latency percentiles,
shed counts and hedge wins are properties of the configuration, not of
the machine the simulation happened to run on.

Mechanisms, each deliberately the textbook version:

- **admission control / bounded queues** — each shard has one FIFO of
  capacity ``queue_capacity``; a request arriving to a full queue is
  *shed* immediately (fast failure) instead of waiting out an SLO it can
  no longer meet. Bounding the queue is what bounds admitted latency.
- **load shedding** — shed decisions are counted per reason
  (``overload``, ``no_snapshot``) so the SLO report can distinguish
  "we were saturated" from "the shard had nothing published yet".
- **hedged reads** — a dispatched request that has not completed within
  ``hedge_delay`` is duplicated onto a second idle replica; the first
  completion wins and the loser is accounted as wasted work (it still
  occupies its replica until it finishes, exactly like a real hedge).

Service times come from a seeded model (per-kind base cost x per-replica
speed x lognormal jitter, with rare ``slow_factor`` spikes standing in
for GC pauses and page faults) rather than from executing the handler,
so simulated latency is hardware-independent; set ``execute="real"`` to
*also* run each admitted request's query handler against the pinned
snapshot and return its answer in the outcome.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.telemetry import TelemetryRegistry, default_registry
from repro.serving.handlers import QueryHandlers
from repro.serving.shards import MapShard, ShardKey, ShardManager
from repro.serving.snapshot import MapSnapshot


class EventLoop:
    """A minimal discrete-event simulator: (time, seq)-ordered callbacks."""

    def __init__(self, start: float = 0.0):
        self._now = start
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` at ``now + delay``; returns a cancellation handle."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        seq = next(self._seq)
        heapq.heappush(self._heap, (self._now + delay, seq, callback))
        return seq

    def cancel(self, handle: int) -> None:
        self._cancelled.add(handle)

    def run_until(self, deadline: float) -> int:
        """Fire every event with time <= deadline, in (time, seq) order."""
        executed = 0
        while self._heap and self._heap[0][0] <= deadline:
            when, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = max(self._now, when)
            callback()
            executed += 1
        self._now = max(self._now, deadline)
        return executed

    def run(self) -> int:
        """Drain the event heap completely (the simulation's natural end)."""
        executed = 0
        while self._heap:
            when, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = max(self._now, when)
            callback()
            executed += 1
        return executed


@dataclass(frozen=True)
class ServingConfig:
    """Router knobs; every default is overridable per scenario."""

    queue_capacity: int = 32       # per-shard admission bound
    replica_concurrency: int = 1   # in-flight requests per replica
    hedge_delay: float = 0.15      # duplicate a straggler after this long
    slo_p99: float = 1.0           # the latency promise (virtual seconds)
    seed: int = 0
    #: Modeled service cost per query kind (virtual seconds).
    service_time_base: Dict[str, float] = field(
        default_factory=lambda: {
            "get_floorplan": 0.004,
            "locate": 0.060,
            "route": 0.020,
        }
    )
    jitter_sigma: float = 0.25     # lognormal sigma on every service time
    slow_prob: float = 0.02        # probability of a straggler spike
    slow_factor: float = 10.0      # spike multiplier (what hedging beats)
    replica_speed_spread: float = 0.10  # replica speed factors in [1, 1+spread]


@dataclass(frozen=True)
class Request:
    """One client query aimed at a shard."""

    request_id: int
    kind: str                      # "get_floorplan" | "locate" | "route"
    shard_key: ShardKey
    arrival: float                 # virtual-clock arrival time
    payload: object = None         # handler arguments for execute="real"


@dataclass
class RequestOutcome:
    """What happened to one request, for the SLO tracker."""

    request: Request
    admitted: bool
    shed_reason: Optional[str] = None
    latency: Optional[float] = None      # completion - arrival (admitted only)
    replica: Optional[int] = None        # replica whose attempt won
    hedged: bool = False                 # a hedge attempt was launched
    hedge_won: bool = False              # ... and it beat the primary
    version: Optional[int] = None        # snapshot version served
    result: object = None                # handler answer under execute="real"


class _Replica:
    __slots__ = ("index", "speed", "in_flight")

    def __init__(self, index: int, speed: float):
        self.index = index
        self.speed = speed
        self.in_flight = 0


class _Pending:
    """Router-internal state of one admitted request."""

    __slots__ = (
        "request", "outcome", "snapshot", "done", "hedged", "attempts",
        "hedge_handle",
    )

    def __init__(self, request: Request, outcome: RequestOutcome):
        self.request = request
        self.outcome = outcome
        self.snapshot: Optional[MapSnapshot] = None
        self.done = False
        self.hedged = False
        self.attempts: List[int] = []        # replica indexes tried
        self.hedge_handle: Optional[int] = None


class _ShardServing:
    """Per-shard serving state: the bounded queue and the replica set."""

    __slots__ = ("shard", "queue", "replicas")

    def __init__(self, shard: MapShard, replicas: List[_Replica]):
        self.shard = shard
        self.queue: Deque[_Pending] = deque()
        self.replicas = replicas


class RequestRouter:
    """Admits, queues, dispatches and hedges requests across shard replicas."""

    def __init__(
        self,
        manager: ShardManager,
        config: Optional[ServingConfig] = None,
        loop: Optional[EventLoop] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        handlers: Optional[QueryHandlers] = None,
        execute: str = "model",
    ):
        if execute not in ("model", "real"):
            raise ValueError("execute must be 'model' or 'real'")
        self.manager = manager
        self.config = config or ServingConfig()
        self.loop = loop or EventLoop()
        self.telemetry = telemetry or default_registry
        self.handlers = handlers or QueryHandlers()
        self.execute = execute
        self.outcomes: List[RequestOutcome] = []
        self._rng = np.random.default_rng(self.config.seed)
        self._states: Dict[ShardKey, _ShardServing] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> RequestOutcome:
        """Admission decision at the current virtual time.

        Returns the outcome record immediately; for admitted requests its
        latency/replica fields are filled in when the completion event
        fires.
        """
        self.telemetry.counter("serving_requests_total", "requests offered").inc()
        self._shard_counter(request.shard_key).inc()
        shard = self.manager.get(request.shard_key)
        snapshot = shard.current() if shard is not None else None
        if snapshot is None:
            return self._shed(request, "no_snapshot")
        state = self._state_for(shard)
        if len(state.queue) >= self.config.queue_capacity:
            return self._shed(request, "overload")
        outcome = RequestOutcome(request=request, admitted=True)
        self.outcomes.append(outcome)
        self.telemetry.counter(
            "serving_requests_admitted", "requests past admission control"
        ).inc()
        pending = _Pending(request, outcome)
        state.queue.append(pending)
        self._dispatch(state)
        return outcome

    def _shed(self, request: Request, reason: str) -> RequestOutcome:
        outcome = RequestOutcome(request=request, admitted=False, shed_reason=reason)
        self.outcomes.append(outcome)
        self.telemetry.counter(
            "serving_requests_shed", "requests rejected by admission control"
        ).inc()
        self.telemetry.counter(
            f"serving_requests_shed_{reason}", f"requests shed: {reason}"
        ).inc()
        return outcome

    def _state_for(self, shard: MapShard) -> _ShardServing:
        state = self._states.get(shard.key)
        if state is None:
            replicas = [
                _Replica(
                    index=i,
                    speed=1.0
                    + self.config.replica_speed_spread * float(self._rng.random()),
                )
                for i in range(len(shard.replicas))
            ]
            state = _ShardServing(shard, replicas)
            self._states[shard.key] = state
        return state

    def _shard_counter(self, key: ShardKey):
        return self.telemetry.counter(
            f"serving_shard_{key.building}_{key.floor}_requests",
            "requests offered to this shard",
        )

    # ------------------------------------------------------------------
    # Dispatch, hedging, completion
    # ------------------------------------------------------------------

    def _idle_replica(
        self, state: _ShardServing, exclude: List[int]
    ) -> Optional[_Replica]:
        """Least-loaded replica with spare concurrency (ties: lowest index)."""
        best: Optional[_Replica] = None
        for replica in state.replicas:
            if replica.in_flight >= self.config.replica_concurrency:
                continue
            if replica.index in exclude:
                continue
            if best is None or replica.in_flight < best.in_flight:
                best = replica
        return best

    def _dispatch(self, state: _ShardServing) -> None:
        while state.queue:
            replica = self._idle_replica(state, exclude=[])
            if replica is None:
                return
            pending = state.queue.popleft()
            # Pin the snapshot the moment processing starts: the whole
            # request is answered from this one immutable version even if
            # a refresh publishes mid-flight (no torn reads).
            pending.snapshot = state.shard.replicas[replica.index].current()
            self._start_attempt(state, pending, replica, primary=True)

    def _start_attempt(
        self,
        state: _ShardServing,
        pending: _Pending,
        replica: _Replica,
        primary: bool,
    ) -> None:
        replica.in_flight += 1
        pending.attempts.append(replica.index)
        service = self._service_time(pending.request.kind, replica)
        self.loop.schedule(
            service, lambda: self._complete(state, pending, replica)
        )
        if primary:
            pending.hedge_handle = self.loop.schedule(
                self.config.hedge_delay, lambda: self._maybe_hedge(state, pending)
            )

    def _service_time(self, kind: str, replica: _Replica) -> float:
        base = self.config.service_time_base[kind]
        jitter = 1.0
        if self.config.jitter_sigma > 0:
            jitter = float(self._rng.lognormal(0.0, self.config.jitter_sigma))
        slow = 1.0
        if self.config.slow_prob > 0 and self._rng.random() < self.config.slow_prob:
            slow = self.config.slow_factor
        return base * replica.speed * jitter * slow

    def _maybe_hedge(self, state: _ShardServing, pending: _Pending) -> None:
        if pending.done:
            return
        replica = self._idle_replica(state, exclude=pending.attempts)
        if replica is None:
            # Every other replica is busy; duplicating onto the one already
            # serving us would only double its work.
            self.telemetry.counter(
                "serving_hedges_skipped", "hedge wanted but no idle replica"
            ).inc()
            return
        pending.hedged = True
        self.telemetry.counter(
            "serving_hedges", "straggler requests duplicated to a second replica"
        ).inc()
        self._start_attempt(state, pending, replica, primary=False)

    def _complete(
        self, state: _ShardServing, pending: _Pending, replica: _Replica
    ) -> None:
        replica.in_flight -= 1
        if pending.done:
            # The other attempt already won; this one was wasted work that
            # nevertheless occupied the replica until now.
            self.telemetry.counter(
                "serving_hedges_wasted", "losing hedge attempts (burned capacity)"
            ).inc()
            self._dispatch(state)
            return
        pending.done = True
        if pending.hedge_handle is not None:
            self.loop.cancel(pending.hedge_handle)
            pending.hedge_handle = None
        outcome = pending.outcome
        outcome.latency = self.loop.now - pending.request.arrival
        outcome.replica = replica.index
        outcome.hedged = pending.hedged
        outcome.hedge_won = pending.hedged and replica.index == pending.attempts[-1]
        snapshot = pending.snapshot
        if snapshot is not None:
            outcome.version = snapshot.version
            if self.execute == "real" and not snapshot.is_stub:
                outcome.result = self.handlers.handle(
                    pending.request.kind, snapshot, pending.request.payload
                )
        self.telemetry.histogram(
            "serving_latency", "admitted-request latency (virtual seconds)"
        ).observe(outcome.latency)
        self.telemetry.histogram(
            f"serving_latency_{pending.request.kind}",
            "per-kind latency (virtual seconds)",
        ).observe(outcome.latency)
        self._dispatch(state)
