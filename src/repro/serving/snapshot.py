"""Versioned, immutable map snapshots (the serving layer's unit of truth).

The build side (``IncrementalCrowdMap`` + the scheduler's refresh job)
and the read side (the request router) meet exactly here, and the
contract is copy-on-publish: a refresh produces a *new*
:class:`MapSnapshot`, the store swaps one reference, and every reader
that already grabbed the previous snapshot keeps using it untouched.
There is no in-place mutation of anything a reader can see, so a reader
can never observe half a floor plan ("torn read") no matter how the
publish interleaves with its queries.

Snapshots also own the derived serving indexes (the visual-localization
database and the skeleton navigator), built lazily on first use and then
shared by every query against that version — rebuilding a localizer per
request would dwarf the query itself.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import CrowdMapConfig
from repro.core.localization import VisualLocalizer
from repro.core.navigation import SkeletonNavigator
from repro.core.pipeline import ReconstructionResult


class MapSnapshot:
    """One immutable published version of a shard's reconstruction.

    ``result`` may be ``None`` for *stub* snapshots, which exist so the
    routing simulator and its benchmarks can exercise admission control
    and hedging without paying for a real reconstruction; the query
    handlers refuse to answer content queries against a stub.
    """

    def __init__(
        self,
        version: int,
        shard_key: Tuple[str, int],
        result: Optional[ReconstructionResult],
        published_at: float,
        config: Optional[CrowdMapConfig] = None,
    ):
        self.version = version
        self.shard_key = shard_key
        self.result = result
        self.published_at = published_at
        self.config = config or CrowdMapConfig()
        self._localizer: Optional[VisualLocalizer] = None
        self._navigator: Optional[SkeletonNavigator] = None
        self._index_lock = threading.Lock()

    @property
    def is_stub(self) -> bool:
        return self.result is None

    def localizer(self) -> VisualLocalizer:
        """The snapshot's visual-localization index (built once, shared)."""
        if self.result is None:
            raise ValueError("stub snapshot has no key-frame corpus")
        with self._index_lock:
            if self._localizer is None:
                self._localizer = VisualLocalizer(self.result, self.config)
            return self._localizer

    def navigator(self) -> SkeletonNavigator:
        """The snapshot's A* planner (built once, shared)."""
        if self.result is None:
            raise ValueError("stub snapshot has no skeleton")
        with self._index_lock:
            if self._navigator is None:
                self._navigator = SkeletonNavigator(self.result.skeleton)
            return self._navigator

    def summary(self) -> Dict[str, object]:
        """A small JSON-ready description (what ``get_floorplan`` returns)."""
        base: Dict[str, object] = {
            "version": self.version,
            "building": self.shard_key[0],
            "floor": self.shard_key[1],
            "published_at": round(self.published_at, 6),
            "stub": self.is_stub,
        }
        if self.result is not None:
            base["rooms"] = sorted(
                r.name for r in self.result.floorplan.rooms if r.name
            )
            base["skeleton_cells"] = int(self.result.skeleton.skeleton.sum())
        return base


class VersionedSnapshotStore:
    """Copy-on-publish snapshot store for one shard replica.

    ``publish`` builds a fresh :class:`MapSnapshot` with the next version
    number; ``install`` accepts a snapshot built elsewhere (the shard
    builds each version once and installs it into every replica store,
    so replicas share the derived indexes instead of rebuilding them).
    The last ``retain`` versions stay addressable for readers pinned to
    an older version mid-flight.
    """

    def __init__(self, shard_key: Tuple[str, int], retain: int = 3):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.shard_key = shard_key
        self.retain = retain
        self._current: Optional[MapSnapshot] = None
        self._versions: Deque[MapSnapshot] = deque(maxlen=retain)
        self._next_version = 1
        self._lock = threading.Lock()

    def current(self) -> Optional[MapSnapshot]:
        """The latest published snapshot (None before the first publish)."""
        return self._current

    def publish(
        self,
        result: Optional[ReconstructionResult],
        now: float,
        config: Optional[CrowdMapConfig] = None,
    ) -> MapSnapshot:
        """Build and install the next version; returns the new snapshot."""
        with self._lock:
            snapshot = MapSnapshot(
                version=self._next_version,
                shard_key=self.shard_key,
                result=result,
                published_at=now,
                config=config,
            )
            self._install_locked(snapshot)
            return snapshot

    def install(self, snapshot: MapSnapshot) -> None:
        """Install an externally built snapshot (replicated publish path).

        Versions must arrive monotonically increasing — a replica never
        moves backwards.
        """
        with self._lock:
            if self._current is not None and snapshot.version <= self._current.version:
                raise ValueError(
                    f"version {snapshot.version} is not newer than "
                    f"published version {self._current.version}"
                )
            self._install_locked(snapshot)

    def _install_locked(self, snapshot: MapSnapshot) -> None:
        self._versions.append(snapshot)
        # Single reference swap: readers see either the old snapshot or
        # the new one in full, never a mixture.
        self._current = snapshot
        self._next_version = snapshot.version + 1

    def get(self, version: int) -> Optional[MapSnapshot]:
        """A retained snapshot by version number (None once evicted)."""
        with self._lock:
            for snapshot in self._versions:
                if snapshot.version == version:
                    return snapshot
        return None

    def history(self) -> List[Tuple[int, float]]:
        """Retained ``(version, published_at)`` pairs, oldest first."""
        with self._lock:
            return [(s.version, s.published_at) for s in self._versions]
