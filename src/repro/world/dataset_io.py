"""Crowd dataset persistence.

Generating a crowd dataset renders thousands of frames; persisting the
result lets benchmarks and notebooks reload it in seconds. The format is a
single ``.npz`` bundle: frame stacks, IMU channels, trajectories and
ground truth per session, plus a JSON manifest of the scalar metadata.

Only the dataset's *contents* are stored — the ground-truth
:class:`~repro.world.floorplan_model.FloorPlan` is procedural, so the
manifest records the builder name and seed and the loader rebuilds it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.telemetry import default_registry
from repro.sensors.imu import ImuConfig, ImuSample, ImuTrace
from repro.sensors.trajectory import Trajectory, TrajectoryPoint
from repro.vision.image import Frame
from repro.world.buildings import BUILDING_BUILDERS
from repro.world.crowd import CrowdConfig, CrowdDataset
from repro.world.lighting import DAYLIGHT, NIGHT, LightingCondition
from repro.world.renderer import Camera
from repro.world.walker import CaptureSession, GroundTruthMotion

_FORMAT_VERSION = 2


def _lighting_by_name(name: str) -> LightingCondition:
    if name == "night":
        return NIGHT
    return DAYLIGHT


def save_dataset(dataset: CrowdDataset, path: str) -> None:
    """Serialize a crowd dataset to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict[str, object] = {
        "version": _FORMAT_VERSION,
        "building": dataset.building,
        "sessions": [],
        "config": {
            "n_users": dataset.config.n_users,
            "sws_per_user": dataset.config.sws_per_user,
            "srs_rooms_per_user": dataset.config.srs_rooms_per_user,
            "night_fraction": dataset.config.night_fraction,
            "seed": dataset.config.seed,
            "camera_width": dataset.config.camera.width,
            "camera_height": dataset.config.camera.height,
        },
    }
    for k, session in enumerate(dataset.sessions):
        prefix = f"s{k:04d}"
        pixels = np.stack([f.pixels for f in session.frames]) if session.frames \
            else np.zeros((0, 1, 1, 3))
        arrays[f"{prefix}_pixels"] = (
            np.clip(pixels * 255.0, 0, 255).astype(np.uint8)
        )
        arrays[f"{prefix}_frame_meta"] = np.array(
            [
                [f.timestamp, f.heading,
                 f.position[0] if f.position else np.nan,
                 f.position[1] if f.position else np.nan,
                 float(f.frame_index)]
                for f in session.frames
            ]
            if session.frames else np.zeros((0, 5))
        )
        imu = session.imu
        arrays[f"{prefix}_imu"] = np.stack(
            [imu.times(), imu.gyro(), imu.accel(), imu.compass(),
             imu.pressure()]
        ) if len(imu) else np.zeros((5, 0))
        traj = session.device_trajectory
        arrays[f"{prefix}_traj"] = np.array(
            [[p.x, p.y, p.t, p.heading] for p in traj.points]
        ) if len(traj) else np.zeros((0, 4))
        gt = session.ground_truth
        arrays[f"{prefix}_gt_times"] = gt.times
        arrays[f"{prefix}_gt_pos"] = gt.positions
        arrays[f"{prefix}_gt_head"] = gt.headings
        arrays[f"{prefix}_gt_steps"] = np.array(gt.step_times)
        if gt.altitudes is not None:
            arrays[f"{prefix}_gt_alt"] = np.asarray(gt.altitudes)
        manifest["sessions"].append(
            {
                "prefix": prefix,
                "session_id": session.session_id,
                "user_id": session.user_id,
                "building": session.building,
                "floor": session.floor,
                "task": session.task,
                "lighting": session.lighting.name,
                "room_name": session.room_name,
            }
        )
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_dataset(
    path: str,
    on_error: str = "raise",
    failures_out: Optional[List[Tuple[str, str]]] = None,
) -> CrowdDataset:
    """Load a dataset saved by :func:`save_dataset`.

    ``on_error`` controls per-session resilience: ``"raise"`` keeps the
    historical fail-fast behaviour, while ``"skip"`` drops sessions whose
    arrays are missing or corrupt (a partially written or bit-rotted
    bundle), records them in the ``dataset_sessions_skipped`` telemetry
    counter and — when ``failures_out`` is supplied — appends
    ``(session_id, reason)`` pairs to it. Manifest-level corruption
    always raises: without the manifest there is no dataset to salvage.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    bundle = np.load(path)
    manifest = json.loads(bytes(bundle["manifest"]).decode("utf-8"))
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {manifest.get('version')}"
        )
    cfg_blob = manifest["config"]
    config = CrowdConfig(
        n_users=cfg_blob["n_users"],
        sws_per_user=cfg_blob["sws_per_user"],
        srs_rooms_per_user=cfg_blob["srs_rooms_per_user"],
        night_fraction=cfg_blob["night_fraction"],
        seed=cfg_blob["seed"],
        camera=Camera(width=cfg_blob["camera_width"],
                      height=cfg_blob["camera_height"]),
    )
    building = manifest["building"]
    plan = BUILDING_BUILDERS[building]()

    sessions: List[CaptureSession] = []
    for meta in manifest["sessions"]:
        try:
            sessions.append(_load_session(bundle, meta))
        except Exception as exc:  # noqa: BLE001 - skip mode sheds bad sessions
            if on_error == "raise":
                raise
            default_registry.counter(
                "dataset_sessions_skipped",
                "sessions dropped while loading a damaged dataset bundle",
            ).inc()
            if failures_out is not None:
                failures_out.append(
                    (meta.get("session_id", meta.get("prefix", "?")),
                     f"{type(exc).__name__}: {exc}")
                )
    return CrowdDataset(
        building=building, plan=plan, sessions=sessions, config=config
    )


def _load_session(bundle, meta: Dict[str, object]) -> CaptureSession:
    """Decode one session's arrays from the bundle (raises on corruption)."""
    prefix = meta["prefix"]
    pixels = bundle[f"{prefix}_pixels"].astype(np.float64) / 255.0
    frame_meta = bundle[f"{prefix}_frame_meta"]
    if frame_meta.ndim != 2 or (len(frame_meta) and frame_meta.shape[1] != 5):
        raise ValueError(f"{prefix}: malformed frame metadata array")
    if len(frame_meta) != len(pixels):
        raise ValueError(
            f"{prefix}: {len(pixels)} frame stacks but "
            f"{len(frame_meta)} metadata rows"
        )
    frames = []
    for i in range(len(frame_meta)):
        t, heading, px, py, idx = frame_meta[i]
        frames.append(
            Frame(
                pixels=pixels[i],
                timestamp=float(t),
                heading=float(heading),
                position=None if np.isnan(px) else (float(px), float(py)),
                frame_index=int(idx),
                user_id=meta["user_id"],
            )
        )
    imu_arr = bundle[f"{prefix}_imu"]
    if imu_arr.ndim != 2 or imu_arr.shape[0] != 5:
        raise ValueError(f"{prefix}: malformed IMU array")
    samples = [
        ImuSample(
            t=float(imu_arr[0, i]),
            gyro_z=float(imu_arr[1, i]),
            accel_magnitude=float(imu_arr[2, i]),
            compass_heading=float(imu_arr[3, i]),
            pressure=float(imu_arr[4, i]),
        )
        for i in range(imu_arr.shape[1])
    ]
    traj_arr = bundle[f"{prefix}_traj"]
    trajectory = Trajectory(
        points=[
            TrajectoryPoint(float(x), float(y), float(t), float(h))
            for x, y, t, h in traj_arr
        ],
        user_id=meta["user_id"],
        trajectory_id=meta["session_id"],
    )
    alt_key = f"{prefix}_gt_alt"
    motion = GroundTruthMotion(
        times=bundle[f"{prefix}_gt_times"],
        positions=bundle[f"{prefix}_gt_pos"],
        headings=bundle[f"{prefix}_gt_head"],
        step_times=list(bundle[f"{prefix}_gt_steps"]),
        altitudes=bundle[alt_key] if alt_key in bundle else None,
    )
    return CaptureSession(
        session_id=meta["session_id"],
        user_id=meta["user_id"],
        building=meta["building"],
        floor=meta["floor"],
        task=meta["task"],
        frames=frames,
        imu=ImuTrace(samples=samples, config=ImuConfig()),
        lighting=_lighting_by_name(meta["lighting"]),
        device_trajectory=trajectory,
        ground_truth=motion,
        room_name=meta["room_name"],
    )
