"""Day/night lighting conditions for the renderer.

Paper Section V.A classifies uploads into a daylight group (sunlight,
100-500 lux) and a night group (incandescent lamps, 75-200 lux) and studies
aggregation robustness as the night fraction grows (Fig. 7b). A lighting
condition scales overall brightness, tints the scene toward the source's
color temperature, and raises sensor noise at low light — the three effects
that actually perturb the CV pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LightingCondition:
    """Photometric conditions of one capture session."""

    name: str
    lux: float
    brightness: float  # global exposure scale
    tint: Tuple[float, float, float]  # per-channel color cast
    sensor_noise_std: float  # additive Gaussian noise in [0,1] pixel units
    vignette: float = 0.0  # 0 = none, 1 = strong corner falloff

    def apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply exposure, tint, vignette and sensor noise to an RGB image."""
        out = image * self.brightness
        out = out * np.asarray(self.tint)[None, None, :]
        if self.vignette > 0.0:
            h, w = out.shape[:2]
            ys = np.linspace(-1.0, 1.0, h)[:, None]
            xs = np.linspace(-1.0, 1.0, w)[None, :]
            falloff = 1.0 - self.vignette * 0.35 * (xs**2 + ys**2)
            out = out * falloff[:, :, None]
        if self.sensor_noise_std > 0.0:
            out = out + rng.normal(0.0, self.sensor_noise_std, out.shape)
        return np.clip(out, 0.0, 1.0)


#: Daylight group: sunlight, 100-500 lux (paper's classification).
DAYLIGHT = LightingCondition(
    name="daylight",
    lux=300.0,
    brightness=1.0,
    tint=(1.0, 1.0, 1.0),
    sensor_noise_std=0.012,
    vignette=0.0,
)

#: Night group: incandescent lamps, 75-200 lux.
NIGHT = LightingCondition(
    name="night",
    lux=120.0,
    brightness=0.55,
    tint=(1.0, 0.86, 0.7),
    sensor_noise_std=0.035,
    vignette=0.35,
)


def condition_for_lux(lux: float) -> LightingCondition:
    """Interpolated lighting condition for an arbitrary illuminance level."""
    lux = float(np.clip(lux, 20.0, 600.0))
    # Map lux to [0, 1] between the night and day reference points.
    t = float(np.clip((lux - NIGHT.lux) / (DAYLIGHT.lux - NIGHT.lux), 0.0, 1.0))
    lerp = lambda a, b: a + t * (b - a)  # noqa: E731 - tiny local helper
    return LightingCondition(
        name=f"lux{int(lux)}",
        lux=lux,
        brightness=lerp(NIGHT.brightness, DAYLIGHT.brightness),
        tint=tuple(lerp(n, d) for n, d in zip(NIGHT.tint, DAYLIGHT.tint)),
        sensor_noise_std=lerp(NIGHT.sensor_noise_std, DAYLIGHT.sensor_noise_std),
        vignette=lerp(NIGHT.vignette, DAYLIGHT.vignette),
    )
