"""The evaluation buildings: Lab1, Lab2, Gym (paper) plus Office (extra).

The paper evaluates on "three different buildings (Lab1 dataset, Lab2
dataset and Gym dataset)". We generate procedural ground truths with the
same character: Lab1 is a classic rectangular loop corridor ringed with
offices, Lab2 a U-shaped corridor wing, and Gym a large open hall with a
short corridor and sporadically placed rooms (the paper notes the Gym's
"sporadic distribution of rooms" drives its worst-case room-location
error).

All coordinates are multiples of the model grid pitch (0.25 m); rooms are
separated from corridors and from each other by one grid cell of solid
wall, bridged by the door openings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.geometry.primitives import BoundingBox, Point
from repro.world.floorplan_model import Door, FloorPlan, Room

_WALL = 0.25  # wall thickness = one model cell


def _room_row(
    name_prefix: str,
    x_start: float,
    y_lo: float,
    y_hi: float,
    widths: List[float],
    door_wall: str,
) -> List[Room]:
    """Lay out a west-to-east row of rooms sharing a corridor wall."""
    rooms = []
    x = x_start
    depth = y_hi - y_lo
    for i, width in enumerate(widths):
        center = Point(x + width / 2.0, (y_lo + y_hi) / 2.0)
        offset = width / 2.0 if door_wall in ("N", "S") else depth / 2.0
        rooms.append(
            Room(
                name=f"{name_prefix}{i + 1}",
                center=center,
                width=width,
                depth=depth,
                door=Door(door_wall, offset),
            )
        )
        x += width + _WALL
    return rooms


def _room_column(
    name_prefix: str,
    y_start: float,
    x_lo: float,
    x_hi: float,
    depths: List[float],
    door_wall: str,
) -> List[Room]:
    """Lay out a south-to-north column of rooms sharing a corridor wall."""
    rooms = []
    y = y_start
    width = x_hi - x_lo
    for i, depth in enumerate(depths):
        center = Point((x_lo + x_hi) / 2.0, y + depth / 2.0)
        offset = depth / 2.0 if door_wall in ("E", "W") else width / 2.0
        rooms.append(
            Room(
                name=f"{name_prefix}{i + 1}",
                center=center,
                width=width,
                depth=depth,
                door=Door(door_wall, offset),
            )
        )
        y += depth + _WALL
    return rooms


def _with_room_waypoints(
    rooms: List[Room],
    waypoints: Dict[str, Point],
    edges: List[Tuple[str, str]],
    corridor_attach: Dict[str, str],
    corridor_clearance: float = 1.25,
) -> None:
    """Add door/centre waypoints per room and wire them into the graph.

    ``corridor_attach`` maps room name -> corridor waypoint to connect the
    room's door waypoint to.
    """
    for room in rooms:
        door_wp = f"{room.name}_door"
        center_wp = f"{room.name}_center"
        outside = room.door_center() + room.door_outward_normal() * corridor_clearance
        waypoints[door_wp] = outside
        waypoints[center_wp] = room.center
        edges.append((door_wp, center_wp))
        attach = corridor_attach.get(room.name)
        if attach is not None:
            edges.append((door_wp, attach))


def build_lab1(texture_seed: int = 101, wall_richness: float = 1.0) -> FloorPlan:
    """Lab1: a 40 x 25 m rectangular loop corridor ringed by 12 offices."""
    cw = 2.5  # corridor width
    hallway = [
        BoundingBox(0.0, 0.0, 40.0, cw),  # south
        BoundingBox(0.0, 25.0 - cw, 40.0, 25.0),  # north
        BoundingBox(0.0, 0.0, cw, 25.0),  # west
        BoundingBox(40.0 - cw, 0.0, 40.0, 25.0),  # east
    ]
    south_rooms = _room_row(
        "s", 2.75, 2.75, 8.75, [5.5, 5.25, 5.5, 5.25, 5.5, 5.0], door_wall="S"
    )
    north_rooms = _room_row(
        "n", 2.75, 16.25, 22.25, [5.5, 5.25, 5.5, 5.25, 5.5, 5.0], door_wall="N"
    )
    rooms = south_rooms + north_rooms

    mid = cw / 2.0
    waypoints: Dict[str, Point] = {
        "sw": Point(mid, mid),
        "se": Point(40.0 - mid, mid),
        "ne": Point(40.0 - mid, 25.0 - mid),
        "nw": Point(mid, 25.0 - mid),
        "w_mid": Point(mid, 12.5),
        "e_mid": Point(40.0 - mid, 12.5),
    }
    edges: List[Tuple[str, str]] = [
        ("sw", "w_mid"),
        ("w_mid", "nw"),
        ("se", "e_mid"),
        ("e_mid", "ne"),
    ]
    # Chain south-corridor door waypoints between sw and se.
    attach: Dict[str, str] = {}
    prev = "sw"
    for room in south_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "se"))
    prev = "nw"
    for room in north_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "ne"))
    _with_room_waypoints(rooms, waypoints, edges, attach)

    return FloorPlan(
        name="Lab1",
        hallway_rects=hallway,
        rooms=rooms,
        waypoints=waypoints,
        waypoint_edges=edges,
        texture_seed=texture_seed,
        wall_richness=wall_richness,
    )


def build_lab2(texture_seed: int = 202, wall_richness: float = 1.0) -> FloorPlan:
    """Lab2: a 35 x 20 m U-shaped corridor wing with 9 rooms."""
    cw = 2.5
    hallway = [
        BoundingBox(0.0, 0.0, 35.0, cw),  # bottom
        BoundingBox(0.0, 0.0, cw, 20.0),  # left
        BoundingBox(35.0 - cw, 0.0, 35.0, 20.0),  # right
    ]
    bottom_rooms = _room_row(
        "b", 2.75, 2.75, 8.75, [5.75, 5.75, 5.75, 5.75, 5.75], door_wall="S"
    )
    left_rooms = _room_column(
        "l", 9.25, 2.75, 8.75, [5.0, 5.0], door_wall="W"
    )
    right_rooms = _room_column(
        "r", 9.25, 26.25, 32.25, [5.0, 5.0], door_wall="E"
    )
    rooms = bottom_rooms + left_rooms + right_rooms

    mid = cw / 2.0
    waypoints: Dict[str, Point] = {
        "sw": Point(mid, mid),
        "se": Point(35.0 - mid, mid),
        "nw": Point(mid, 20.0 - mid),
        "ne": Point(35.0 - mid, 20.0 - mid),
    }
    edges: List[Tuple[str, str]] = []
    attach: Dict[str, str] = {}
    prev = "sw"
    for room in bottom_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "se"))
    prev = "sw"
    for room in left_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "nw"))
    prev = "se"
    for room in right_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "ne"))
    _with_room_waypoints(rooms, waypoints, edges, attach)

    return FloorPlan(
        name="Lab2",
        hallway_rects=hallway,
        rooms=rooms,
        waypoints=waypoints,
        waypoint_edges=edges,
        texture_seed=texture_seed,
        wall_richness=wall_richness,
    )


def build_gym(texture_seed: int = 303, wall_richness: float = 1.0) -> FloorPlan:
    """Gym: a 30 x 20 m open hall, a corridor stub, and 5 sporadic rooms."""
    hallway = [
        BoundingBox(0.0, 0.0, 30.0, 20.0),  # the open gym hall
        BoundingBox(30.0, 7.5, 45.0, 10.5),  # corridor to the annex
    ]
    rooms = [
        Room(  # locker room off the hall's south-east corner
            name="locker",
            center=Point(33.5, 3.5),
            width=6.5,
            depth=6.5,
            door=Door("W", 3.25),
        ),
        Room(  # storage off the hall's north wall
            name="storage",
            center=Point(5.5, 23.0),
            width=6.0,
            depth=5.5,
            door=Door("S", 3.0),
        ),
        Room(  # two offices north of the corridor
            name="office1",
            center=Point(34.75, 13.75),
            width=5.5,
            depth=6.0,
            door=Door("S", 2.75),
        ),
        Room(
            name="office2",
            center=Point(41.25, 13.75),
            width=5.5,
            depth=6.0,
            door=Door("S", 2.75),
        ),
        Room(  # equipment room south of the corridor
            name="equipment",
            center=Point(41.0, 4.0),
            width=6.5,
            depth=6.5,
            door=Door("N", 3.25),
        ),
    ]

    # The open hall gets a grid of interior waypoints: gym users wander
    # across the whole floor (courts, equipment, bleachers), so the crowd's
    # joint coverage spans the hall rather than hugging one diagonal.
    waypoints: Dict[str, Point] = {
        "hall_sw": Point(2.0, 2.0),
        "hall_se": Point(28.0, 2.0),
        "hall_ne": Point(28.0, 18.0),
        "hall_nw": Point(2.0, 18.0),
        "hall_east": Point(28.0, 9.0),
        "corr_w": Point(31.0, 9.0),
        "corr_mid": Point(37.5, 9.0),
        "corr_e": Point(43.5, 9.0),
    }
    grid_xs = (6.0, 15.0, 24.0)
    grid_ys = (5.0, 10.0, 15.0)
    for gi, gx in enumerate(grid_xs):
        for gj, gy in enumerate(grid_ys):
            waypoints[f"hall_g{gi}{gj}"] = Point(gx, gy)
    edges: List[Tuple[str, str]] = [
        ("hall_se", "hall_east"),
        ("hall_ne", "hall_east"),
        ("hall_east", "corr_w"),
        ("corr_w", "corr_mid"),
        ("corr_mid", "corr_e"),
        ("hall_sw", "hall_g00"),
        ("hall_se", "hall_g20"),
        ("hall_nw", "hall_g02"),
        ("hall_ne", "hall_g22"),
        ("hall_east", "hall_g21"),
    ]
    # 4-connect the interior grid.
    for gi in range(len(grid_xs)):
        for gj in range(len(grid_ys)):
            if gi + 1 < len(grid_xs):
                edges.append((f"hall_g{gi}{gj}", f"hall_g{gi + 1}{gj}"))
            if gj + 1 < len(grid_ys):
                edges.append((f"hall_g{gi}{gj}", f"hall_g{gi}{gj + 1}"))
    attach = {
        "locker": "hall_east",
        "storage": "hall_nw",
        "office1": "corr_mid",
        "office2": "corr_e",
        "equipment": "corr_mid",
    }
    _with_room_waypoints(rooms, waypoints, edges, attach)

    return FloorPlan(
        name="Gym",
        hallway_rects=hallway,
        rooms=rooms,
        waypoints=waypoints,
        waypoint_edges=edges,
        texture_seed=texture_seed,
        wall_richness=wall_richness,
    )


def build_office(texture_seed: int = 404, wall_richness: float = 1.0) -> FloorPlan:
    """Office: a 30 x 24 m T-shaped corridor floor with 8 rooms.

    Not part of the paper's evaluation set — a fourth building for
    generalization checks (does the pipeline tuned on Lab1/Lab2/Gym work
    on an unseen plan shape?).
    """
    cw = 2.5
    hallway = [
        BoundingBox(0.0, 10.75, 30.0, 10.75 + cw),  # the T's horizontal bar
        BoundingBox(13.75, 0.0, 13.75 + cw, 10.75),  # the T's stem
    ]
    north_rooms = _room_row(
        "n", 1.0, 13.5, 19.5, [6.5, 6.75, 6.5, 6.75], door_wall="S"
    )
    stem_west = _room_column(
        "w", 0.5, 7.25, 13.5, [4.75, 4.75], door_wall="E"
    )
    stem_east = _room_column(
        "e", 0.5, 16.5, 22.75, [4.75, 4.75], door_wall="W"
    )
    rooms = north_rooms + stem_west + stem_east

    mid = cw / 2.0
    waypoints: Dict[str, Point] = {
        "bar_w": Point(1.5, 10.75 + mid),
        "bar_e": Point(28.5, 10.75 + mid),
        "junction": Point(15.0, 10.75 + mid),
        "stem_s": Point(15.0, 1.5),
        "stem_mid": Point(15.0, 6.0),
    }
    edges: List[Tuple[str, str]] = [
        ("stem_s", "stem_mid"),
        ("stem_mid", "junction"),
        ("junction", "bar_w"),
        ("junction", "bar_e"),
    ]
    attach: Dict[str, str] = {}
    prev = "bar_w"
    for room in north_rooms:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "bar_e"))
    prev = "stem_s"
    for room in stem_west:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "junction"))
    prev = "stem_s"
    for room in stem_east:
        attach[room.name] = prev
        prev = f"{room.name}_door"
    edges.append((prev, "junction"))
    _with_room_waypoints(rooms, waypoints, edges, attach)

    return FloorPlan(
        name="Office",
        hallway_rects=hallway,
        rooms=rooms,
        waypoints=waypoints,
        waypoint_edges=edges,
        texture_seed=texture_seed,
        wall_richness=wall_richness,
    )


#: Registry used by examples and benchmarks.
BUILDING_BUILDERS: Dict[str, Callable[..., FloorPlan]] = {
    "Lab1": build_lab1,
    "Lab2": build_lab2,
    "Gym": build_gym,
    "Office": build_office,
}
