"""2.5D raycasting renderer producing real RGB frames.

Stands in for the smartphone camera: given a floor plan (textured wall
faces), a camera pose and a lighting condition, it renders a perspective
frame by casting one ray per image column, intersecting all wall segments,
and painting the wall/floor/ceiling bands with the world's procedural
textures. The output is an ordinary ``(H, W, 3)`` array the CV substrate
(SURF/HOG/histograms/stitching) consumes exactly as it would a decoded
video frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.primitives import Point
from repro.world.floorplan_model import FloorPlan, WALL_HEIGHT
from repro.world.lighting import DAYLIGHT, LightingCondition
from repro.world.textures import ceiling_color, floor_color

#: Horizontal field of view of a 35 mm-equivalent phone camera in landscape
#: orientation — the paper's "visible angle of 54.4 degrees".
DEFAULT_FOV = math.radians(54.4)


@dataclass(frozen=True)
class Camera:
    """Pinhole camera intrinsics and mounting height."""

    width: int = 160
    #: Taller than 4:3 on purpose: with a 54.4-degree horizontal FOV this
    #: gives ~63 degrees vertically, keeping the floor-wall and
    #: ceiling-wall junctions of nearby room walls inside the frame (the
    #: role the slight downward pitch of a real user's phone plays).
    height: int = 192
    fov: float = DEFAULT_FOV
    eye_height: float = 1.5  # phone held in front of the chest

    @property
    def focal_px(self) -> float:
        return (self.width / 2.0) / math.tan(self.fov / 2.0)

    def column_offsets(self) -> np.ndarray:
        """Angular offset of each column from the optical axis.

        Column 0 is the left edge of the image, which looks *left* of the
        heading (positive offset, since azimuth grows CCW).
        """
        xs = (self.width - 1) / 2.0 - np.arange(self.width)
        return np.arctan(xs / self.focal_px)


class Renderer:
    """Renders frames of one floor plan."""

    def __init__(self, plan: FloorPlan, camera: Optional[Camera] = None):
        self.plan = plan
        self.camera = camera or Camera()
        walls = plan.walls
        self._ax = np.array([w.segment.a.x for w in walls])
        self._ay = np.array([w.segment.a.y for w in walls])
        self._bx = np.array([w.segment.b.x for w in walls])
        self._by = np.array([w.segment.b.y for w in walls])
        self._ex = self._bx - self._ax
        self._ey = self._by - self._ay
        self._lengths = np.hypot(self._ex, self._ey)

    def cast_rays(self, origin: Point, angles: np.ndarray):
        """Nearest wall hit along each ray angle.

        Returns ``(distances, wall_indices, u_coords)`` where ``u`` is the
        hit position in metres along the wall segment. Rays that escape the
        model (shouldn't happen in a closed plan) get distance ``inf`` and
        index ``-1``.
        """
        dx = np.cos(angles)[:, None]  # (W, 1)
        dy = np.sin(angles)[:, None]
        ox, oy = origin.x, origin.y
        # Solve o + t*d = a + s*e per (ray, segment).
        denom = dx * self._ey[None, :] - dy * self._ex[None, :]
        qx = (self._ax - ox)[None, :]
        qy = (self._ay - oy)[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (qx * self._ey[None, :] - qy * self._ex[None, :]) / denom
            s = (qx * dy - qy * dx) / denom
        valid = (denom != 0) & (t > 1e-6) & (s >= 0.0) & (s <= 1.0)
        t = np.where(valid, t, np.inf)
        idx = np.argmin(t, axis=1)
        rays = np.arange(len(angles))
        distances = t[rays, idx]
        u = s[rays, idx] * self._lengths[idx]
        idx = np.where(np.isfinite(distances), idx, -1)
        return distances, idx, u

    def render(
        self,
        position: Point,
        heading: float,
        lighting: LightingCondition = DAYLIGHT,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Render one RGB frame from ``position`` looking along ``heading``.

        ``rng`` drives the lighting/texture noise. Omitting it falls back
        to a generator seeded with 0 — the repo-wide CM001 convention —
        which makes repeated renders of the same pose *identical* (the
        per-frame noise realization is also the same every call). Pass the
        capture session's generator to get independent noise per frame.
        """
        cam = self.camera
        rng = rng if rng is not None else np.random.default_rng(0)
        h, w = cam.height, cam.width
        offsets = cam.column_offsets()
        angles = heading + offsets
        distances, wall_idx, u_coords = self.cast_rays(position, angles)

        cos_off = np.cos(offsets)
        perp = np.where(np.isfinite(distances), distances * cos_off, 1e6)
        perp = np.maximum(perp, 0.05)

        focal = cam.focal_px
        horizon = (h - 1) / 2.0
        wall_bottom = horizon + focal * cam.eye_height / perp  # float rows
        wall_top = horizon - focal * (WALL_HEIGHT - cam.eye_height) / perp

        rows = np.arange(h)[:, None].astype(np.float64)  # (H, 1)
        image = np.zeros((h, w, 3), dtype=np.float64)

        # ---- wall band -------------------------------------------------
        in_wall = (rows >= wall_top[None, :]) & (rows <= wall_bottom[None, :])
        in_wall &= wall_idx[None, :] >= 0
        span = np.maximum(wall_bottom - wall_top, 1e-6)
        v_img = (wall_bottom[None, :] - rows) / span[None, :] * WALL_HEIGHT
        u_img = np.broadcast_to(u_coords[None, :], (h, w))
        walls = self.plan.walls
        hit_walls = np.unique(wall_idx[wall_idx >= 0])
        for wi in hit_walls:
            mask = in_wall & (wall_idx[None, :] == wi)
            if not mask.any():
                continue
            colors = walls[int(wi)].texture.sample(u_img[mask], v_img[mask])
            image[mask] = colors

        # Distance attenuation on the wall band.
        attenuation = 1.0 / (1.0 + 0.035 * perp**1.4)
        image *= np.where(in_wall, attenuation[None, :], 1.0)[:, :, None]

        # ---- floor band ------------------------------------------------
        below = rows > np.maximum(wall_bottom[None, :], horizon + 0.51)
        if below.any():
            drop = np.maximum(rows - horizon, 0.51)  # rows below horizon
            floor_perp = focal * cam.eye_height / drop  # (H, 1)
            ray_dist = floor_perp / cos_off[None, :]
            fx = position.x + np.cos(angles)[None, :] * ray_dist
            fy = position.y + np.sin(angles)[None, :] * ray_dist
            fmask = below
            fcols = floor_color(fx[fmask], fy[fmask], seed=self.plan.texture_seed)
            att = 1.0 / (1.0 + 0.035 * np.broadcast_to(floor_perp, (h, w))[fmask] ** 1.4)
            image[fmask] = fcols * att[:, None]

        # ---- ceiling band ----------------------------------------------
        above = rows < np.minimum(wall_top[None, :], horizon - 0.51)
        if above.any():
            rise = np.maximum(horizon - rows, 0.51)
            ceil_perp = focal * (WALL_HEIGHT - cam.eye_height) / rise
            ray_dist = ceil_perp / cos_off[None, :]
            cx = position.x + np.cos(angles)[None, :] * ray_dist
            cy = position.y + np.sin(angles)[None, :] * ray_dist
            cmask = above
            ccols = ceiling_color(cx[cmask], cy[cmask], seed=self.plan.texture_seed)
            att = 1.0 / (1.0 + 0.025 * np.broadcast_to(ceil_perp, (h, w))[cmask] ** 1.4)
            image[cmask] = ccols * att[:, None]

        return lighting.apply(image, rng)
