"""Simulated users executing the paper's data-collection micro-tasks.

A :class:`Walker` owns one user's gait parameters and phone (IMU simulator
+ camera) and can perform the two micro-tasks of paper Section III.A:

- **Stay-Rotate-Stay (SRS)**: stand at a point and spin in place while
  recording, producing the overlapping frames the panorama stage stitches;
- **Stay-Walk-Stay (SWS)**: walk a waypoint route while recording,
  producing the video + IMU stream from which the trajectory
  ``(x_i, y_i, t_i)`` is dead-reckoned.

The resulting :class:`CaptureSession` carries exactly what the mobile
front-end would upload (frames annotated with *device-estimated* pose, the
raw IMU trace, and the Task-1 geo-spatial annotation) plus the hidden
ground truth used only by the evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.primitives import Point, wrap_angle
from repro.sensors.dead_reckoning import DeadReckoningConfig, dead_reckon
from repro.sensors.heading import HeadingEstimator
from repro.sensors.imu import ImuConfig, ImuSimulator, ImuTrace
from repro.sensors.trajectory import Trajectory
from repro.vision.image import Frame
from repro.world.floorplan_model import FloorPlan
from repro.world.lighting import DAYLIGHT, LightingCondition
from repro.world.renderer import Camera, Renderer

_GT_RATE = 20.0  # ground-truth motion sampling rate, Hz


@dataclass(frozen=True)
class WalkerProfile:
    """One user's gait and capture habits."""

    user_id: str
    step_length: float = 0.7  # true stride, m (device assumes 0.7)
    walking_speed: float = 1.2  # m/s
    rotation_speed: float = math.radians(40.0)  # SRS spin rate, rad/s
    stay_duration: float = 1.0  # the "Stay" phases, s
    sws_frame_interval: float = 0.5  # s between captured frames
    srs_frame_interval: float = 0.33
    camera_yaw_jitter: float = math.radians(1.2)  # hand shake
    position_sway: float = 0.04  # lateral sway amplitude, m
    #: Std-dev of the error on each session's assumed start position. The
    #: device only knows its start coarsely (Task-1 geo annotation + last
    #: GPS fix), so dead-reckoned trajectories begin offset by this much.
    origin_noise_std: float = 0.35


@dataclass
class GroundTruthMotion:
    """True motion of one capture session (evaluation-only)."""

    times: np.ndarray
    positions: np.ndarray  # (N, 2)
    headings: np.ndarray
    step_times: List[float]
    #: Altitude above the ground floor, metres (None = constant 0).
    altitudes: Optional[np.ndarray] = None

    def position_at(self, t: float) -> Point:
        x = float(np.interp(t, self.times, self.positions[:, 0]))
        y = float(np.interp(t, self.times, self.positions[:, 1]))
        return Point(x, y)

    def heading_at(self, t: float) -> float:
        unwrapped = np.unwrap(self.headings)
        return float(np.interp(t, self.times, unwrapped))


@dataclass
class CaptureSession:
    """One uploaded sensor-rich video with its annotations."""

    session_id: str
    user_id: str
    building: str
    floor: int
    task: str  # "SRS" or "SWS"
    frames: List[Frame]
    imu: ImuTrace
    lighting: LightingCondition
    device_trajectory: Trajectory
    ground_truth: GroundTruthMotion
    room_name: Optional[str] = None  # set for SRS sessions inside a room
    metadata: dict = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def duration(self) -> float:
        return self.imu.duration()


class Walker:
    """Executes micro-tasks for one user inside one building."""

    def __init__(
        self,
        plan: FloorPlan,
        profile: WalkerProfile,
        camera: Optional[Camera] = None,
        imu_config: Optional[ImuConfig] = None,
        rng: Optional[np.random.Generator] = None,
        renderer: Optional[Renderer] = None,
        altitude: float = 0.0,
        capture_frames: bool = True,
    ):
        self.plan = plan
        self.profile = profile
        #: Altitude (m) of the floor this walker is on; drives the
        #: barometer channel used by multi-floor reconstruction.
        self.altitude = altitude
        #: Omitting ``rng`` falls back to the fixed seed 0 (CM001): two
        #: Walkers built without a generator produce identical sessions.
        #: Pass a seeded Generator to get independent realizations.
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: ``capture_frames=False`` skips rendering entirely (sensor-only
        #: campaigns, e.g. the fleet simulator). Frames render *after* the
        #: IMU record and dead reckoning, so a session's trajectory is
        #: unaffected — but later sessions of the same walker diverge from
        #: the rendered realization because the render loop consumes RNG.
        self.capture_frames = capture_frames
        if renderer is not None:
            self.renderer = renderer
        else:
            self.renderer = Renderer(plan, camera) if capture_frames else None
        self.imu_sim = ImuSimulator(config=imu_config, rng=self.rng)
        self._session_counter = 0

    def _next_session_id(self) -> str:
        self._session_counter += 1
        return f"{self.profile.user_id}-{self.plan.name}-{self._session_counter:03d}"

    # ------------------------------------------------------------------
    # Ground-truth motion synthesis
    # ------------------------------------------------------------------

    def _sws_motion(
        self,
        route: Sequence[Point],
        pause_at: Optional[float] = None,
        pause_s: float = 0.0,
    ) -> GroundTruthMotion:
        """Walk along a waypoint polyline with stay phases at both ends.

        ``pause_at`` (fraction of the route, 0-1) inserts a ``pause_s``
        standstill mid-walk — the behaviour real contributors exhibit
        (answering a text) that the LCSS band parameter delta must absorb.
        """
        p = self.profile
        if len(route) < 2:
            raise ValueError("an SWS route needs at least two waypoints")
        # Piecewise-constant-speed motion along the polyline.
        leg_lengths = [route[i].distance_to(route[i + 1]) for i in range(len(route) - 1)]
        total_len = sum(leg_lengths)
        walk_time = total_len / p.walking_speed
        pause_dist = (
            None if pause_at is None else float(np.clip(pause_at, 0, 1)) * total_len
        )
        pause_start = (
            None if pause_dist is None
            else p.stay_duration + pause_dist / p.walking_speed
        )
        t_total = 2 * p.stay_duration + walk_time + (
            pause_s if pause_at is not None else 0.0
        )
        times = np.arange(0.0, t_total + 1e-9, 1.0 / _GT_RATE)

        positions = np.zeros((len(times), 2))
        headings = np.zeros(len(times))
        cum = np.concatenate([[0.0], np.cumsum(leg_lengths)])
        for i, t in enumerate(times):
            # Remove the paused interval from the effective walking clock.
            if pause_start is not None and t > pause_start:
                effective_t = max(pause_start, t - pause_s)
            else:
                effective_t = t
            walked = np.clip(
                (effective_t - p.stay_duration) * p.walking_speed, 0.0, total_len
            )
            leg = min(int(np.searchsorted(cum, walked, side="right")) - 1,
                      len(leg_lengths) - 1)
            leg_pos = walked - cum[leg]
            a, b = route[leg], route[leg + 1]
            frac = leg_pos / leg_lengths[leg] if leg_lengths[leg] > 0 else 0.0
            x = a.x + frac * (b.x - a.x)
            y = a.y + frac * (b.y - a.y)
            # Lateral gait sway perpendicular to the leg direction.
            heading = math.atan2(b.y - a.y, b.x - a.x)
            sway = p.position_sway * math.sin(2.0 * math.pi * 1.8 * t)
            x += sway * -math.sin(heading)
            y += sway * math.cos(heading)
            positions[i] = (x, y)
            headings[i] = heading
        # During the stay phases the user faces the first/last leg direction.
        first_heading = math.atan2(route[1].y - route[0].y, route[1].x - route[0].x)
        headings[times <= p.stay_duration] = first_heading
        step_period = p.step_length / p.walking_speed
        step_times = list(
            np.arange(p.stay_duration + step_period / 2.0,
                      p.stay_duration + walk_time
                      + (pause_s if pause_at is not None else 0.0),
                      step_period)
        )
        if pause_start is not None:
            step_times = [
                st for st in step_times
                if not (pause_start <= st <= pause_start + pause_s)
            ]
        return GroundTruthMotion(times, positions, headings, step_times)

    def _srs_motion(self, position: Point, total_angle: float,
                    start_heading: float) -> GroundTruthMotion:
        """Spin in place by ``total_angle`` radians (CCW if positive)."""
        p = self.profile
        spin_time = abs(total_angle) / p.rotation_speed
        t_total = 2 * p.stay_duration + spin_time
        times = np.arange(0.0, t_total + 1e-9, 1.0 / _GT_RATE)
        headings = np.full(len(times), start_heading)
        spinning = (times > p.stay_duration) & (times <= p.stay_duration + spin_time)
        headings[spinning] = start_heading + (
            (times[spinning] - p.stay_duration) / spin_time
        ) * total_angle
        headings[times > p.stay_duration + spin_time] = start_heading + total_angle
        positions = np.tile([position.x, position.y], (len(times), 1))
        # Tiny stance shuffle so the position is not perfectly constant.
        positions += self.rng.normal(0.0, 0.01, positions.shape)
        return GroundTruthMotion(times, positions, headings, [])

    # ------------------------------------------------------------------
    # Capture (render + IMU + device-side processing)
    # ------------------------------------------------------------------

    def _capture(
        self,
        motion: GroundTruthMotion,
        task: str,
        frame_interval: float,
        lighting: LightingCondition,
        room_name: Optional[str],
        initial_heading_known: bool,
    ) -> CaptureSession:
        altitudes = motion.altitudes
        if altitudes is None and abs(self.altitude) > 0.0:
            altitudes = np.full(len(motion.times), self.altitude)
        imu = self.imu_sim.record(
            motion.times, motion.positions, motion.headings,
            motion.step_times, altitudes=altitudes,
        )
        # Device-side processing, as the mobile front-end would do it: fused
        # heading track and dead-reckoned trajectory in the local frame.
        estimator = HeadingEstimator()
        device_headings = estimator.estimate(
            imu,
            initial_heading=(motion.headings[0] if initial_heading_known else None),
        )
        imu_times = imu.times()
        origin_err = self.rng.normal(0.0, self.profile.origin_noise_std, 2)
        device_traj = dead_reckon(
            imu,
            DeadReckoningConfig(),
            origin=(
                motion.positions[0][0] + origin_err[0],
                motion.positions[0][1] + origin_err[1],
            ),
            initial_heading=(motion.headings[0] if initial_heading_known else None),
            user_id=self.profile.user_id,
        )

        session_id = self._next_session_id()
        frames: List[Frame] = []
        capture_times = (
            np.arange(motion.times[0], motion.times[-1] + 1e-9, frame_interval)
            if self.capture_frames and self.renderer is not None
            else np.empty(0)
        )
        for k, t in enumerate(capture_times):
            true_pos = motion.position_at(float(t))
            true_heading = motion.heading_at(float(t))
            jitter = float(self.rng.normal(0.0, self.profile.camera_yaw_jitter))
            pixels = self.renderer.render(
                true_pos, true_heading + jitter, lighting=lighting, rng=self.rng
            )
            dev_heading = float(np.interp(t, imu_times, device_headings))
            idx = device_traj.nearest_index(float(t)) if len(device_traj) else 0
            dev_pos = (
                (device_traj[idx].x, device_traj[idx].y) if len(device_traj) else None
            )
            frames.append(
                Frame(
                    pixels=pixels,
                    timestamp=float(t),
                    heading=dev_heading,
                    position=dev_pos,
                    frame_index=k,
                    user_id=self.profile.user_id,
                )
            )
        return CaptureSession(
            session_id=session_id,
            user_id=self.profile.user_id,
            building=self.plan.name,
            floor=1,
            task=task,
            frames=frames,
            imu=imu,
            lighting=lighting,
            device_trajectory=device_traj,
            ground_truth=motion,
            room_name=room_name,
        )

    def perform_sws(
        self,
        route: Sequence[Point],
        lighting: LightingCondition = DAYLIGHT,
        initial_heading_known: bool = True,
        pause_at: Optional[float] = None,
        pause_s: float = 0.0,
    ) -> CaptureSession:
        """Record a Stay-Walk-Stay session along ``route``."""
        motion = self._sws_motion(route, pause_at=pause_at, pause_s=pause_s)
        return self._capture(
            motion,
            task="SWS",
            frame_interval=self.profile.sws_frame_interval,
            lighting=lighting,
            room_name=None,
            initial_heading_known=initial_heading_known,
        )

    def perform_srs(
        self,
        position: Point,
        total_angle: float = 2.0 * math.pi + math.radians(20.0),
        start_heading: Optional[float] = None,
        lighting: LightingCondition = DAYLIGHT,
        room_name: Optional[str] = None,
        initial_heading_known: bool = True,
    ) -> CaptureSession:
        """Record a Stay-Rotate-Stay session spinning at ``position``.

        The default ``total_angle`` slightly exceeds a full turn so that the
        panorama's first and last frames overlap (360-degree closure).
        """
        if start_heading is None:
            start_heading = float(self.rng.uniform(-math.pi, math.pi))
        motion = self._srs_motion(position, total_angle, wrap_angle(start_heading))
        return self._capture(
            motion,
            task="SRS",
            frame_interval=self.profile.srs_frame_interval,
            lighting=lighting,
            room_name=room_name,
            initial_heading_known=initial_heading_known,
        )

    def perform_stairs(
        self,
        position: Point,
        delta_floors: int,
        floor_height: float = 3.0,
        climb_speed: float = 0.5,
        lighting: LightingCondition = DAYLIGHT,
    ) -> CaptureSession:
        """Record a stair transition (no video - the phone is pocketed).

        Produces the IMU-only session multi-floor reconstruction uses as a
        reference point connecting floors: steps while climbing, plus a
        barometric altitude ramp of ``delta_floors`` storeys starting at
        this walker's current floor altitude.
        """
        if delta_floors == 0:
            raise ValueError("a stair transition must change floors")
        p = self.profile
        climb_m = abs(delta_floors) * floor_height
        climb_time = climb_m / climb_speed
        t_total = 2 * p.stay_duration + climb_time
        times = np.arange(0.0, t_total + 1e-9, 1.0 / _GT_RATE)
        positions = np.tile([position.x, position.y], (len(times), 1))
        positions += self.rng.normal(0.0, 0.05, positions.shape)
        headings = np.zeros(len(times))
        altitudes = np.full(len(times), self.altitude, dtype=np.float64)
        climbing = (times > p.stay_duration) & (
            times <= p.stay_duration + climb_time
        )
        ramp = (times[climbing] - p.stay_duration) / climb_time
        altitudes[climbing] = self.altitude + ramp * delta_floors * floor_height
        altitudes[times > p.stay_duration + climb_time] = (
            self.altitude + delta_floors * floor_height
        )
        # Stair steps: slower cadence than level walking.
        step_times = list(
            np.arange(p.stay_duration + 0.3, p.stay_duration + climb_time, 0.5)
        )
        motion = GroundTruthMotion(
            times, positions, headings, step_times, altitudes=altitudes
        )
        imu = self.imu_sim.record(
            motion.times, motion.positions, motion.headings,
            motion.step_times, altitudes=altitudes,
        )
        device_traj = dead_reckon(
            imu, DeadReckoningConfig(),
            origin=(position.x, position.y),
            initial_heading=0.0,
            user_id=self.profile.user_id,
        )
        return CaptureSession(
            session_id=self._next_session_id(),
            user_id=self.profile.user_id,
            building=self.plan.name,
            floor=-1,  # unknown until the backend classifies it
            task="STAIRS",
            frames=[],
            imu=imu,
            lighting=lighting,
            device_trajectory=device_traj,
            ground_truth=motion,
        )
