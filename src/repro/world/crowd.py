"""Crowd simulation: many users, many sessions, one dataset.

Composes :class:`~repro.world.walker.Walker` runs into the kind of dataset
the paper collected — "61,243 key frames of three different buildings from
301 sensor-rich video sequences successfully uploaded by 25 users. Some
places were captured multiple times." Users walk randomized corridor routes
(SWS) and spin inside rooms (SRS); sessions are captured under a day/night
lighting mix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.primitives import Point
from repro.world.floorplan_model import FloorPlan
from repro.world.lighting import DAYLIGHT, NIGHT, LightingCondition
from repro.world.renderer import Camera, Renderer
from repro.world.walker import CaptureSession, Walker, WalkerProfile


@dataclass(frozen=True)
class CrowdConfig:
    """Shape of a simulated crowdsourcing campaign."""

    n_users: int = 6
    sws_per_user: int = 2
    srs_rooms_per_user: int = 1
    night_fraction: float = 0.0
    min_route_length: float = 8.0  # metres, shortest acceptable SWS route
    seed: int = 0
    camera: Camera = field(default_factory=Camera)
    #: When False, users start SWS tasks with unknown absolute heading —
    #: trajectories then live in arbitrarily rotated local frames.
    initial_heading_known: bool = True
    #: When False, no frames are rendered (sensor-only campaign): sessions
    #: carry IMU traces and dead-reckoned trajectories but empty frame
    #: lists. Orders of magnitude cheaper — this is what lets the fleet
    #: simulator seed city-scale crowds. Not frame-strippable back to the
    #: rendered realization: rendering consumes walker RNG, so sessions
    #: after a user's first differ between the two modes.
    render_frames: bool = True


@dataclass
class CrowdDataset:
    """All sessions uploaded for one building."""

    building: str
    plan: FloorPlan
    sessions: List[CaptureSession]
    config: CrowdConfig

    def sws_sessions(self) -> List[CaptureSession]:
        return [s for s in self.sessions if s.task == "SWS"]

    def srs_sessions(self) -> List[CaptureSession]:
        return [s for s in self.sessions if s.task == "SRS"]

    def srs_for_room(self, room_name: str) -> List[CaptureSession]:
        return [s for s in self.srs_sessions() if s.room_name == room_name]

    def total_frames(self) -> int:
        return sum(s.n_frames for s in self.sessions)

    def by_lighting(self, name: str) -> List[CaptureSession]:
        return [s for s in self.sessions if s.lighting.name == name]


def _corridor_waypoints(plan: FloorPlan) -> List[str]:
    """Waypoints that lie in the hallway (everything but room centres)."""
    return [name for name in plan.waypoints if not name.endswith("_center")]


def _random_route(
    plan: FloorPlan,
    rng: np.random.Generator,
    min_length: float,
    start: Optional[str] = None,
    max_tries: int = 30,
    via_probability: float = 0.5,
) -> List[Point]:
    """A corridor route of at least ``min_length`` metres.

    When ``start`` is given the route begins there (used by the coverage
    rotation); the destination is always random. With ``via_probability``
    the route detours through a random intermediate waypoint — real
    contributors rarely take shortest paths, and the detours spread the
    crowd's joint coverage across the whole floor.
    """
    import networkx as nx

    names = _corridor_waypoints(plan)
    best: Optional[List[Point]] = None
    best_len = 0.0
    for _ in range(max_tries):
        if start is None:
            a, b = rng.choice(names, size=2, replace=False)
        else:
            a = start
            b = rng.choice([n for n in names if n != start])
        try:
            if rng.random() < via_probability and len(names) > 2:
                via = rng.choice([n for n in names if n not in (a, b)])
                route = (
                    plan.route_between(str(a), str(via))
                    + plan.route_between(str(via), str(b))[1:]
                )
            else:
                route = plan.route_between(str(a), str(b))
        except nx.NetworkXNoPath:
            continue
        length = sum(route[i].distance_to(route[i + 1]) for i in range(len(route) - 1))
        if length >= min_length:
            return route
        if length > best_len:
            best, best_len = route, length
    if best is None or len(best) < 2:
        raise RuntimeError(f"no usable route found in {plan.name}")
    return best


def make_profiles(n_users: int, rng: np.random.Generator) -> List[WalkerProfile]:
    """Per-user gait variation around the population averages."""
    profiles = []
    for i in range(n_users):
        profiles.append(
            WalkerProfile(
                user_id=f"user{i:02d}",
                step_length=float(rng.uniform(0.62, 0.78)),
                walking_speed=float(rng.uniform(1.0, 1.45)),
                rotation_speed=math.radians(float(rng.uniform(32.0, 50.0))),
                camera_yaw_jitter=math.radians(float(rng.uniform(0.6, 1.8))),
            )
        )
    return profiles


def generate_crowd_dataset(
    plan: FloorPlan,
    config: Optional[CrowdConfig] = None,
    rooms: Optional[Sequence[str]] = None,
) -> CrowdDataset:
    """Simulate a full crowdsourcing campaign in ``plan``.

    Every user walks ``sws_per_user`` random corridor routes and spins
    (SRS) inside ``srs_rooms_per_user`` rooms, chosen round-robin so all of
    ``rooms`` (default: every room) get covered when the crowd is large
    enough. ``night_fraction`` of sessions are captured under night
    lighting.
    """
    config = config or CrowdConfig()
    rng = np.random.default_rng(config.seed)
    renderer = Renderer(plan, config.camera) if config.render_frames else None
    profiles = make_profiles(config.n_users, rng)
    room_names = list(rooms) if rooms is not None else [r.name for r in plan.rooms]

    sessions: List[CaptureSession] = []
    room_cursor = 0
    start_cycle = list(_corridor_waypoints(plan))
    rng.shuffle(start_cycle)
    start_cursor = 0
    for profile in profiles:
        walker = Walker(
            plan,
            profile,
            rng=np.random.default_rng(rng.integers(2**31)),
            renderer=renderer,
            capture_frames=config.render_frames,
        )
        for _ in range(config.sws_per_user):
            lighting = _pick_lighting(rng, config.night_fraction)
            # Rotate route start points through every corridor waypoint so
            # the crowd's joint coverage reaches all corridor segments
            # (real crowds do this naturally: users enter from everywhere).
            start = start_cycle[start_cursor % len(start_cycle)]
            start_cursor += 1
            route = _random_route(
                plan, rng, config.min_route_length, start=start
            )
            sessions.append(
                walker.perform_sws(
                    route,
                    lighting=lighting,
                    initial_heading_known=config.initial_heading_known,
                )
            )
        for _ in range(config.srs_rooms_per_user):
            if not room_names:
                break
            room = plan.room_by_name(room_names[room_cursor % len(room_names)])
            room_cursor += 1
            lighting = _pick_lighting(rng, config.night_fraction)
            # Spin near the room centre, not exactly at it.
            offset = Point(
                float(rng.uniform(-0.4, 0.4)), float(rng.uniform(-0.4, 0.4))
            )
            sessions.append(
                walker.perform_srs(
                    room.center + offset,
                    lighting=lighting,
                    room_name=room.name,
                    initial_heading_known=config.initial_heading_known,
                )
            )
    return CrowdDataset(
        building=plan.name, plan=plan, sessions=sessions, config=config
    )


def _pick_lighting(rng: np.random.Generator, night_fraction: float) -> LightingCondition:
    return NIGHT if rng.random() < night_fraction else DAYLIGHT
