"""Procedural wall textures.

Every wall face is painted procedurally from world coordinates, so the same
wall looks identical from any viewpoint — which is what lets SURF features
detected in one user's frame match another user's frame of the same wall.
A texture is composed of:

- a base paint color with slow horizontal variation;
- a darker wainscot band and a trim stripe (long horizontal lines for the
  line-segment detector);
- posters/signs in pseudo-random slots, each with a high-frequency interior
  pattern (blob structure for the fast-Hessian detector);
- doors at explicit positions (dark panels with frames — the vertical lines
  the room-layout stage keys on).

``richness`` scales poster density and pattern contrast; near zero it
produces the featureless walls that defeat SfM (paper Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

_UINT = np.uint64
_MASK = np.uint64(0xFFFFFFFF)


def _hash_ints(ix: np.ndarray, iy: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic integer hash to [0, 1), vectorized."""
    h = (
        ix.astype(_UINT) * _UINT(374761393)
        + iy.astype(_UINT) * _UINT(668265263)
        + _UINT(seed % (2**31)) * _UINT(2654435761)
    ) & _MASK
    h ^= h >> _UINT(13)
    h = (h * _UINT(1274126177)) & _MASK
    h ^= h >> _UINT(16)
    return h.astype(np.float64) / float(2**32)


def value_noise(u: np.ndarray, v: np.ndarray, scale: float, seed: int) -> np.ndarray:
    """Smooth value noise in [0, 1) over (u, v) with feature size ``scale``."""
    gu = np.asarray(u, dtype=np.float64) / scale
    gv = np.asarray(v, dtype=np.float64) / scale
    iu = np.floor(gu).astype(np.int64)
    iv = np.floor(gv).astype(np.int64)
    fu = gu - iu
    fv = gv - iv
    # Smoothstep interpolation between the four corner hashes.
    su = fu * fu * (3.0 - 2.0 * fu)
    sv = fv * fv * (3.0 - 2.0 * fv)
    c00 = _hash_ints(iu, iv, seed)
    c10 = _hash_ints(iu + 1, iv, seed)
    c01 = _hash_ints(iu, iv + 1, seed)
    c11 = _hash_ints(iu + 1, iv + 1, seed)
    top = c00 + su * (c10 - c00)
    bottom = c01 + su * (c11 - c01)
    return top + sv * (bottom - top)


# A palette of plausible poster/sign colors with a wide luminance spread,
# so different posters stay distinguishable even in grayscale descriptors.
_POSTER_COLORS = np.array(
    [
        [0.82, 0.25, 0.2],
        [0.2, 0.45, 0.75],
        [0.95, 0.75, 0.2],
        [0.25, 0.6, 0.35],
        [0.55, 0.3, 0.65],
        [0.95, 0.95, 0.9],
        [0.1, 0.1, 0.15],
        [0.85, 0.5, 0.15],
    ]
)


@dataclass(frozen=True)
class WallTexture:
    """Parameters of one wall face's procedural texture.

    ``doors`` holds (u_center, width) pairs in metres along the wall;
    ``richness`` in [0, 1] scales how much distinctive detail the wall has.
    """

    seed: int
    base_color: Tuple[float, float, float] = (0.78, 0.76, 0.72)
    richness: float = 1.0
    doors: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)
    poster_slot_m: float = 1.8
    wainscot_height: float = 1.0
    wall_height: float = 2.7

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """RGB colors at wall coordinates (u along wall, v height), (N, 3).

        ``u`` and ``v`` are same-shaped arrays in metres; v=0 at the floor.
        """
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        n = u.size
        shape = u.shape
        uf = u.ravel()
        vf = v.ravel()
        rgb = np.empty((n, 3), dtype=np.float64)
        rgb[:] = self.base_color

        # Slow horizontal paint variation (keeps flat walls from being
        # perfectly constant, which would destabilize NCC scores) plus a
        # longer-wavelength tint drift so distant wall sections differ.
        variation = (value_noise(uf, np.zeros_like(uf), 2.5, self.seed) - 0.5) * 0.08
        drift = (value_noise(uf, np.zeros_like(uf), 9.0, self.seed + 3) - 0.5)
        rgb += variation[:, None]
        rgb[:, 0] += drift * 0.10
        rgb[:, 2] -= drift * 0.08

        # Wainscot band and trim stripe. Kept low-contrast: strong repeated
        # horizontal structure would flood the feature detector with
        # position-independent matches.
        wainscot = vf < self.wainscot_height
        rgb[wainscot] *= 0.93
        trim = np.abs(vf - self.wainscot_height) < 0.025
        rgb[trim] *= 0.8
        base_strip = vf < 0.08
        rgb[base_strip] = [0.22, 0.21, 0.19]

        # Vertical accent elements (pilasters, utility doors, conduit,
        # colored lockers) at pseudo-random positions. Verticals survive the
        # grazing-angle foreshortening of corridor walls, so they are the
        # landmarks that make one wall section distinguishable from another.
        if self.richness > 0.0:
            accent_slot_m = 2.6
            aslot = np.floor(uf / accent_slot_m).astype(np.int64)
            azeros = np.zeros_like(aslot)
            a_rand = _hash_ints(aslot, azeros, self.seed + 71)
            has_accent = a_rand < 0.5 * self.richness
            a_center = (aslot + 0.5) * accent_slot_m + (
                _hash_ints(aslot, azeros, self.seed + 73) - 0.5
            ) * 1.2
            a_half = 0.05 + _hash_ints(aslot, azeros, self.seed + 79) * 0.35
            a_height = 1.4 + _hash_ints(aslot, azeros, self.seed + 83) * 1.3
            a_inside = (
                has_accent & (np.abs(uf - a_center) < a_half) & (vf < a_height)
            )
            if a_inside.any():
                aslot_in = aslot[a_inside]
                az_in = np.zeros_like(aslot_in)
                color_idx = (
                    _hash_ints(aslot_in, az_in, self.seed + 89)
                    * len(_POSTER_COLORS)
                ).astype(int) % len(_POSTER_COLORS)
                accent_rgb = _POSTER_COLORS[color_idx] * (
                    0.55 + 0.45 * _hash_ints(aslot_in, az_in, self.seed + 97)
                )[:, None]
                rgb[a_inside] = accent_rgb
                a_edge = a_inside & (
                    np.abs(np.abs(uf - a_center) - a_half) < 0.03
                )
                rgb[a_edge] = [0.15, 0.15, 0.17]

        # Posters in pseudo-random slots, each with a per-slot pattern style
        # so neighbouring posters look genuinely different.
        if self.richness > 0.0:
            slot = np.floor(uf / self.poster_slot_m).astype(np.int64)
            zeros = np.zeros_like(slot)
            slot_rand = _hash_ints(slot, zeros, self.seed + 7)
            has_poster = slot_rand < 0.65 * self.richness
            center = (slot + 0.5) * self.poster_slot_m + (
                _hash_ints(slot, zeros, self.seed + 13) - 0.5
            ) * 0.5
            half_w = 0.3 + _hash_ints(slot, zeros, self.seed + 17) * 0.3
            v_lo = 1.2 + _hash_ints(slot, zeros, self.seed + 19) * 0.25
            v_hi = v_lo + 0.55 + _hash_ints(slot, zeros, self.seed + 23) * 0.4
            inside = (
                has_poster
                & (np.abs(uf - center) < half_w)
                & (vf > v_lo)
                & (vf < v_hi)
            )
            if inside.any():
                slot_in = slot[inside]
                zeros_in = np.zeros_like(slot_in)
                color_idx = (
                    _hash_ints(slot_in, zeros_in, self.seed + 29)
                    * len(_POSTER_COLORS)
                ).astype(int) % len(_POSTER_COLORS)
                poster_rgb = _POSTER_COLORS[color_idx].copy()
                ui, vi = uf[inside], vf[inside]
                style = (
                    _hash_ints(slot_in, zeros_in, self.seed + 37) * 4
                ).astype(int)
                contrast = 0.45 + 0.45 * self.richness
                # Style 0: blobby noise. 1: horizontal text lines.
                # 2: vertical bars. 3: checker blocks.
                pattern = np.where(
                    style == 0,
                    value_noise(ui, vi, 0.08, self.seed + 31),
                    np.where(
                        style == 1,
                        (np.mod(vi * 9.0 + _hash_ints(slot_in, zeros_in,
                                                      self.seed + 41), 1.0) < 0.45
                         ).astype(float)
                        * value_noise(ui, zeros_in.astype(float), 0.12,
                                      self.seed + 43),
                        np.where(
                            style == 2,
                            (np.mod(ui * 6.0, 1.0) < 0.5).astype(float),
                            ((np.floor(ui * 5.0) + np.floor(vi * 5.0)) % 2),
                        ),
                    ),
                )
                poster_rgb = poster_rgb * (1.0 - contrast * (pattern[:, None] > 0.4))
                rgb[inside] = poster_rgb
                border = inside & (
                    (np.abs(np.abs(uf - center) - half_w) < 0.025)
                    | (np.abs(vf - v_lo) < 0.025)
                    | (np.abs(vf - v_hi) < 0.025)
                )
                rgb[border] = [0.1, 0.1, 0.12]

        # Large framed notice boards roughly every 7 m: a high-contrast
        # landmark that makes each wall section identifiable at a distance.
        if self.richness > 0.2:
            board_slot_m = 7.0
            bslot = np.floor(uf / board_slot_m).astype(np.int64)
            bzeros = np.zeros_like(bslot)
            b_rand = _hash_ints(bslot, bzeros, self.seed + 53)
            has_board = b_rand < 0.6 * self.richness
            b_center = (bslot + 0.5) * board_slot_m + (
                _hash_ints(bslot, bzeros, self.seed + 59) - 0.5
            ) * 2.0
            b_half = 0.8
            b_inside = (
                has_board
                & (np.abs(uf - b_center) < b_half)
                & (vf > 1.1)
                & (vf < 2.1)
            )
            if b_inside.any():
                rgb[b_inside] = [0.35, 0.22, 0.12]  # cork board
                # Pinned papers: bright rectangles at hashed grid cells.
                pu = np.floor((uf[b_inside] - b_center[b_inside]) / 0.3)
                pv = np.floor(vf[b_inside] / 0.28)
                paper = _hash_ints(
                    pu.astype(np.int64) + bslot[b_inside] * 17,
                    pv.astype(np.int64),
                    self.seed + 61,
                )
                lit = paper < 0.5
                shade = 0.75 + 0.25 * _hash_ints(
                    pu.astype(np.int64), pv.astype(np.int64), self.seed + 67
                )
                papers = np.stack([shade, shade, shade * 0.92], axis=1)
                target = rgb[b_inside]
                target[lit] = papers[lit]
                rgb[b_inside] = target
                b_border = b_inside & (
                    (np.abs(np.abs(uf - b_center) - b_half) < 0.04)
                    | (np.abs(vf - 1.1) < 0.04)
                    | (np.abs(vf - 2.1) < 0.04)
                )
                rgb[b_border] = [0.2, 0.18, 0.15]

        # Doors: painted last so they overwrite posters.
        for door_u, door_w in self.doors:
            half = door_w / 2.0
            in_door = (np.abs(uf - door_u) < half) & (vf < 2.1)
            rgb[in_door] = [0.42, 0.28, 0.18]
            panel = in_door & (
                value_noise(uf, vf, 0.3, self.seed + 41) > 0.5
            )
            rgb[panel] *= 0.92
            frame = (np.abs(np.abs(uf - door_u) - half) < 0.04) & (vf < 2.15)
            frame |= (np.abs(uf - door_u) < half + 0.04) & (
                np.abs(vf - 2.1) < 0.05
            )
            rgb[frame] = [0.55, 0.5, 0.45]
            knob = (
                (np.abs(uf - (door_u + half - 0.12)) < 0.035)
                & (np.abs(vf - 1.05) < 0.035)
            )
            rgb[knob] = [0.85, 0.8, 0.55]

        return np.clip(rgb, 0.0, 1.0).reshape(shape + (3,))


FLOOR_COLOR = np.array([0.55, 0.53, 0.5])
CEILING_COLOR = np.array([0.9, 0.9, 0.88])


def floor_color(x: np.ndarray, y: np.ndarray, seed: int = 97) -> np.ndarray:
    """Floor RGB at world (x, y): low-contrast tiles, drift, and worn patches.

    Deliberately muted periodic structure (faint grout) plus aperiodic
    terrazzo drift and hashed scuff patches, so the floor contributes
    location-dependent appearance rather than a repeating pattern.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    rgb = np.broadcast_to(FLOOR_COLOR, x.shape + (3,)).copy()
    tile = 0.6
    grout_x = np.abs(np.mod(x, tile)) < 0.025
    grout_y = np.abs(np.mod(y, tile)) < 0.025
    speckle = (value_noise(x, y, 0.15, seed) - 0.5) * 0.06
    drift = (value_noise(x, y, 11.0, seed + 5) - 0.5)
    rgb += speckle[..., None]
    rgb[..., 0] += drift * 0.09
    rgb[..., 1] += drift * 0.05
    rgb[grout_x | grout_y] *= 0.93
    # Worn/scuffed patches at hashed 2 m cells.
    cell_x = np.floor(x / 2.0).astype(np.int64)
    cell_y = np.floor(y / 2.0).astype(np.int64)
    worn = _hash_ints(cell_x, cell_y, seed + 9) < 0.18
    rgb[worn] *= 0.88
    return np.clip(rgb, 0.0, 1.0)


def ceiling_color(x: np.ndarray, y: np.ndarray, seed: int = 131) -> np.ndarray:
    """Ceiling RGB at world (x, y): acoustic tiles with irregular fixtures."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    rgb = np.broadcast_to(CEILING_COLOR, x.shape + (3,)).copy()
    tile = 1.2
    grid_x = np.abs(np.mod(x, tile)) < 0.03
    grid_y = np.abs(np.mod(y, tile)) < 0.03
    rgb[grid_x | grid_y] *= 0.92
    # Light fixtures at hash-selected tiles (irregular layout).
    tile_x = np.floor(x / tile).astype(np.int64)
    tile_y = np.floor(y / tile).astype(np.int64)
    has_fixture = _hash_ints(tile_x, tile_y, seed + 3) < 0.18
    fixture = (
        has_fixture
        & (np.abs(np.mod(x, tile) - tile / 2) < 0.35)
        & (np.abs(np.mod(y, tile) - tile / 2) < 0.2)
    )
    rgb[fixture] = [1.0, 1.0, 0.97]
    # Occasional stained/replaced tile.
    stained = _hash_ints(tile_x, tile_y, seed + 11) < 0.08
    rgb[stained & ~fixture] *= 0.9
    return np.clip(rgb, 0.0, 1.0)
