"""Ground-truth floor plan model.

A building floor is a union of axis-aligned spaces: hallway rectangles plus
rectangular rooms, connected by door openings. From that declarative
description the model derives everything the rest of the system needs:

- the walkable region (for the walker and for collision tests);
- textured wall faces for the raycasting renderer, extracted from a fine
  occupancy grid and merged into long segments;
- ground-truth masks and polygons for the evaluation module;
- a waypoint route graph for the simulated crowd.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment
from repro.geometry.polygon_ops import rasterize_polygons
from repro.world.textures import WallTexture

#: Grid pitch used for walkability tests and wall extraction (metres).
MODEL_CELL = 0.25

#: Standard interior wall height (metres).
WALL_HEIGHT = 2.7


@dataclass(frozen=True)
class Door:
    """A door opening connecting a room to the hallway.

    ``wall`` names the room wall holding the door ('N', 'S', 'E' or 'W');
    ``offset`` is the door centre's distance along that wall from its
    west/south end; ``width`` is the opening width in metres.
    """

    wall: str
    offset: float
    width: float = 0.95

    def __post_init__(self) -> None:
        if self.wall not in ("N", "S", "E", "W"):
            raise ValueError(f"unknown wall {self.wall!r}")
        if self.width <= 0:
            raise ValueError("door width must be positive")


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room."""

    name: str
    center: Point
    width: float  # extent along x
    depth: float  # extent along y
    door: Door = field(default_factory=lambda: Door("S", 1.0))

    def polygon(self) -> Polygon:
        return Polygon.rectangle(self.center, self.width, self.depth)

    def bounding_box(self) -> BoundingBox:
        return BoundingBox(
            self.center.x - self.width / 2.0,
            self.center.y - self.depth / 2.0,
            self.center.x + self.width / 2.0,
            self.center.y + self.depth / 2.0,
        )

    def area(self) -> float:
        return self.width * self.depth

    def aspect_ratio(self) -> float:
        """Length over width (always >= 1)."""
        long_side = max(self.width, self.depth)
        short_side = min(self.width, self.depth)
        return long_side / short_side

    def door_center(self) -> Point:
        """World position of the door centre (on the room boundary)."""
        bb = self.bounding_box()
        if self.door.wall == "S":
            return Point(bb.min_x + self.door.offset, bb.min_y)
        if self.door.wall == "N":
            return Point(bb.min_x + self.door.offset, bb.max_y)
        if self.door.wall == "W":
            return Point(bb.min_x, bb.min_y + self.door.offset)
        return Point(bb.max_x, bb.min_y + self.door.offset)

    def door_outward_normal(self) -> Point:
        """Unit vector pointing out of the room through the door."""
        return {
            "S": Point(0.0, -1.0),
            "N": Point(0.0, 1.0),
            "W": Point(-1.0, 0.0),
            "E": Point(1.0, 0.0),
        }[self.door.wall]


@dataclass(frozen=True)
class Wall:
    """A renderable wall face: a segment plus its texture."""

    segment: Segment
    texture: WallTexture
    space_id: int  # -1 for hallway-facing, else index into rooms
    #: True for the rendered (closed) door leaves across room openings.
    is_door_leaf: bool = False

    def length(self) -> float:
        return self.segment.length()


class FloorPlan:
    """A complete single-floor ground truth.

    ``hallway_rects`` are axis-aligned rectangles whose union forms the
    hallway; rooms attach to the hallway (or to each other) through their
    door openings. ``waypoints``/``waypoint_edges`` describe the corridor
    route graph the simulated crowd walks on.
    """

    def __init__(
        self,
        name: str,
        hallway_rects: Sequence[BoundingBox],
        rooms: Sequence[Room],
        waypoints: Optional[Dict[str, Point]] = None,
        waypoint_edges: Optional[Sequence[Tuple[str, str]]] = None,
        texture_seed: int = 0,
        wall_richness: float = 1.0,
    ):
        if not hallway_rects:
            raise ValueError("a floor plan needs at least one hallway rect")
        self.name = name
        self.hallway_rects = list(hallway_rects)
        self.rooms = list(rooms)
        self.texture_seed = texture_seed
        self.wall_richness = wall_richness
        self._bounds = self._compute_bounds()
        self._grid, self._space_grid = self._build_occupancy()
        self.walls = self._extract_walls() + self._door_leaves()
        self.waypoints = dict(waypoints or {})
        self._route_graph = self._build_route_graph(waypoint_edges or [])

    # ------------------------------------------------------------------
    # Geometry and occupancy
    # ------------------------------------------------------------------

    def _compute_bounds(self) -> BoundingBox:
        bounds = self.hallway_rects[0]
        for rect in self.hallway_rects[1:]:
            bounds = bounds.union(rect)
        for room in self.rooms:
            bounds = bounds.union(room.bounding_box())
        return bounds.expanded(2.0 * MODEL_CELL)

    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    def _grid_shape(self) -> Tuple[int, int]:
        rows = int(math.ceil(self._bounds.height / MODEL_CELL))
        cols = int(math.ceil(self._bounds.width / MODEL_CELL))
        return rows, cols

    def _build_occupancy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Walkable mask and per-cell space id (-2 solid, -1 hallway, i room)."""
        rows, cols = self._grid_shape()
        walkable = np.zeros((rows, cols), dtype=bool)
        space = np.full((rows, cols), -2, dtype=np.int32)

        def cells_in(bb: BoundingBox) -> Tuple[slice, slice]:
            c0 = int((bb.min_x - self._bounds.min_x) / MODEL_CELL + 0.5)
            c1 = int((bb.max_x - self._bounds.min_x) / MODEL_CELL + 0.5)
            r0 = int((bb.min_y - self._bounds.min_y) / MODEL_CELL + 0.5)
            r1 = int((bb.max_y - self._bounds.min_y) / MODEL_CELL + 0.5)
            return slice(max(0, r0), min(rows, r1)), slice(max(0, c0), min(cols, c1))

        for rect in self.hallway_rects:
            rs, cs = cells_in(rect)
            walkable[rs, cs] = True
            space[rs, cs] = -1
        for idx, room in enumerate(self.rooms):
            rs, cs = cells_in(room.bounding_box())
            walkable[rs, cs] = True
            space[rs, cs] = idx
        # Carve door openings: a strip through the room wall, extended
        # outward along the door normal until it reaches already-walkable
        # space (so walls up to 3 cells thick are bridged).
        reach = 3 * MODEL_CELL
        for idx, room in enumerate(self.rooms):
            door_c = room.door_center()
            normal = room.door_outward_normal()
            half = room.door.width / 2.0
            outer = door_c + normal * reach
            min_x = min(door_c.x, outer.x)
            max_x = max(door_c.x, outer.x)
            min_y = min(door_c.y, outer.y)
            max_y = max(door_c.y, outer.y)
            if room.door.wall in ("N", "S"):
                bb = BoundingBox(
                    door_c.x - half, min_y - MODEL_CELL,
                    door_c.x + half, max_y + MODEL_CELL,
                )
            else:
                bb = BoundingBox(
                    min_x - MODEL_CELL, door_c.y - half,
                    max_x + MODEL_CELL, door_c.y + half,
                )
            rs, cs = cells_in(bb)
            # Only carve solid cells; never punch through into unrelated
            # walkable space's bookkeeping.
            window = space[rs, cs]
            carve = window == -2
            walkable[rs, cs] |= carve
            window[carve] = idx
        return walkable, space

    def is_walkable(self, p: Point) -> bool:
        """True when ``p`` lies in walkable (hallway/room/door) space."""
        r = int((p.y - self._bounds.min_y) / MODEL_CELL)
        c = int((p.x - self._bounds.min_x) / MODEL_CELL)
        rows, cols = self._grid.shape
        if not (0 <= r < rows and 0 <= c < cols):
            return False
        return bool(self._grid[r, c])

    def space_at(self, p: Point) -> int:
        """Space id at ``p``: -1 hallway, room index, or -2 (solid/outside)."""
        r = int((p.y - self._bounds.min_y) / MODEL_CELL)
        c = int((p.x - self._bounds.min_x) / MODEL_CELL)
        rows, cols = self._grid.shape
        if not (0 <= r < rows and 0 <= c < cols):
            return -2
        return int(self._space_grid[r, c])

    # ------------------------------------------------------------------
    # Wall extraction
    # ------------------------------------------------------------------

    def _texture_for(self, space_id: int, face_key: int) -> WallTexture:
        """Deterministic texture for a wall face of a given space."""
        base_seed = self.texture_seed * 7919 + space_id * 271 + face_key * 31
        if space_id == -1:
            base = (0.78, 0.76, 0.72)  # hallway paint
        else:
            # Vary room paint slightly per room.
            tint = (space_id * 37) % 5
            palettes = [
                (0.80, 0.78, 0.70),
                (0.75, 0.78, 0.76),
                (0.80, 0.74, 0.70),
                (0.74, 0.76, 0.80),
                (0.79, 0.77, 0.74),
            ]
            base = palettes[tint]
        return WallTexture(
            seed=base_seed, base_color=base, richness=self.wall_richness
        )

    def _extract_walls(self) -> List[Wall]:
        """Merge grid boundary faces into long textured wall segments."""
        walkable = self._grid
        space = self._space_grid
        rows, cols = walkable.shape
        x0, y0 = self._bounds.min_x, self._bounds.min_y
        walls: List[Wall] = []

        padded = np.zeros((rows + 2, cols + 2), dtype=bool)
        padded[1:-1, 1:-1] = walkable

        # Vertical faces: walkable cell at (r, c) with solid at (r, c±1).
        for direction, col_offset, face_x_offset in (("E", 1, 1.0), ("W", -1, 0.0)):
            boundary = padded[1:-1, 1:-1] & ~padded[1:-1, 1 + col_offset : cols + 1 + col_offset]
            for c in range(cols):
                run_start = None
                run_space = None
                for r in range(rows + 1):
                    here = boundary[r, c] if r < rows else False
                    sp = int(space[r, c]) if r < rows else None
                    if here and run_start is None:
                        run_start, run_space = r, sp
                    elif run_start is not None and (not here or sp != run_space):
                        walls.append(
                            self._make_wall_v(
                                c + face_x_offset, run_start, r, run_space, x0, y0
                            )
                        )
                        run_start, run_space = (r, sp) if here else (None, None)
        # Horizontal faces: walkable cell at (r, c) with solid at (r±1, c).
        for direction, row_offset, face_y_offset in (("N", 1, 1.0), ("S", -1, 0.0)):
            boundary = padded[1:-1, 1:-1] & ~padded[1 + row_offset : rows + 1 + row_offset, 1:-1]
            for r in range(rows):
                run_start = None
                run_space = None
                for c in range(cols + 1):
                    here = boundary[r, c] if c < cols else False
                    sp = int(space[r, c]) if c < cols else None
                    if here and run_start is None:
                        run_start, run_space = c, sp
                    elif run_start is not None and (not here or sp != run_space):
                        walls.append(
                            self._make_wall_h(
                                r + face_y_offset, run_start, c, run_space, x0, y0
                            )
                        )
                        run_start, run_space = (c, sp) if here else (None, None)
        return walls

    def _make_wall_v(
        self, face_col: float, r_start: int, r_end: int, space_id: int,
        x0: float, y0: float,
    ) -> Wall:
        x = x0 + face_col * MODEL_CELL
        a = Point(x, y0 + r_start * MODEL_CELL)
        b = Point(x, y0 + r_end * MODEL_CELL)
        face_key = int(face_col) * 2
        return Wall(Segment(a, b), self._texture_for(space_id, face_key), space_id)

    def _make_wall_h(
        self, face_row: float, c_start: int, c_end: int, space_id: int,
        x0: float, y0: float,
    ) -> Wall:
        y = y0 + face_row * MODEL_CELL
        a = Point(x0 + c_start * MODEL_CELL, y)
        b = Point(x0 + c_end * MODEL_CELL, y)
        face_key = int(face_row) * 2 + 1
        return Wall(Segment(a, b), self._texture_for(space_id, face_key), space_id)

    def _door_leaves(self) -> List[Wall]:
        """Closed door leaves rendered across each room's door opening.

        The occupancy grid stays carved (walkers pass through — they open
        the door), but the renderer sees a closed door: rooms are visually
        sealed, which keeps corridor vistas out of room panoramas exactly
        as a closed door would in the paper's buildings. Wide openings
        (door wider than 1.6 m, e.g. archways into alcoves) stay open.
        """
        leaves: List[Wall] = []
        for idx, room in enumerate(self.rooms):
            if room.door.width > 1.6:
                continue
            centre = room.door_center()
            normal = room.door_outward_normal()
            # Place the leaf mid-wall so both sides see it.
            mid = centre + normal * (MODEL_CELL / 2.0)
            tangent = Point(-normal.y, normal.x)
            half = room.door.width / 2.0
            a = mid + tangent * (-half)
            b = mid + tangent * half
            texture = WallTexture(
                seed=self.texture_seed * 131 + idx * 17 + 5,
                base_color=(0.5, 0.34, 0.22),
                richness=0.0,
                doors=((half, room.door.width),),
            )
            leaves.append(
                Wall(Segment(a, b), texture, space_id=idx, is_door_leaf=True)
            )
        return leaves

    # ------------------------------------------------------------------
    # Route graph
    # ------------------------------------------------------------------

    def _build_route_graph(self, edges: Sequence[Tuple[str, str]]) -> nx.Graph:
        graph = nx.Graph()
        for name, point in self.waypoints.items():
            graph.add_node(name, point=point)
        for a, b in edges:
            if a not in self.waypoints or b not in self.waypoints:
                raise ValueError(f"edge references unknown waypoint: {a}-{b}")
            dist = self.waypoints[a].distance_to(self.waypoints[b])
            graph.add_edge(a, b, weight=dist)
        return graph

    @property
    def route_graph(self) -> nx.Graph:
        return self._route_graph

    def route_between(self, start: str, end: str) -> List[Point]:
        """Waypoint path (as points) between two named waypoints."""
        names = nx.shortest_path(self._route_graph, start, end, weight="weight")
        return [self.waypoints[n] for n in names]

    # ------------------------------------------------------------------
    # Ground-truth products for the evaluation
    # ------------------------------------------------------------------

    def hallway_polygons(self) -> List[Polygon]:
        return [
            Polygon.rectangle(rect.center, rect.width, rect.height)
            for rect in self.hallway_rects
        ]

    def hallway_mask(self, cell_size: float, bounds: Optional[BoundingBox] = None) -> np.ndarray:
        """Ground-truth hallway occupancy mask (row 0 = south)."""
        return rasterize_polygons(
            self.hallway_polygons(), bounds or self._bounds, cell_size
        )

    def room_by_name(self, name: str) -> Room:
        for room in self.rooms:
            if room.name == name:
                return room
        raise KeyError(f"no room named {name!r} in {self.name}")

    def total_area(self) -> float:
        """Upper bound on floor area: hallway rects + rooms (overlaps ignored)."""
        return sum(r.area() for r in self.hallway_rects) + sum(
            room.area() for room in self.rooms
        )
