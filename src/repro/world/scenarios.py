"""Seeded evaluation scenario matrix: buildings × lighting × crowd sizes.

The accuracy scorecard (:mod:`repro.eval.scorecard`) needs a stable,
named grid of worlds to reconstruct and score. A :class:`ScenarioSpec`
pins everything that influences the generated dataset — building,
lighting condition, crowd size, per-user task counts and the RNG seed —
so the same spec regenerates byte-identical sensor data on any machine,
which is what lets ``ACCURACY_baseline.json`` be a committed, diffable
artifact.

Seeds are derived from the cell key (not from enumeration order), so
adding or removing cells never changes the data of the remaining ones.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.world.buildings import BUILDING_BUILDERS
from repro.world.crowd import CrowdConfig, CrowdDataset, generate_crowd_dataset
from repro.world.floorplan_model import FloorPlan

#: Lighting condition names a scenario may request.
LIGHTINGS = ("day", "night")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully pinned evaluation world: who walked where, under what light."""

    building: str
    lighting: str = "day"
    n_users: int = 3
    sws_per_user: int = 2
    srs_rooms_per_user: int = 1
    base_seed: int = 11
    #: ``False`` generates a sensor-only campaign (no rendered frames) —
    #: used by the fleet simulator to afford multi-building crowds.
    #: Deliberately excluded from :attr:`key`: the cell identity is the
    #: world, not the capture fidelity.
    render_frames: bool = True

    def __post_init__(self) -> None:
        if self.building not in BUILDING_BUILDERS:
            raise ValueError(
                f"unknown building {self.building!r}; "
                f"known: {sorted(BUILDING_BUILDERS)}"
            )
        if self.lighting not in LIGHTINGS:
            raise ValueError(
                f"lighting must be one of {LIGHTINGS}, got {self.lighting!r}"
            )
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")

    @property
    def key(self) -> str:
        """Stable cell name, used as the baseline-JSON key."""
        return f"{self.building}/{self.lighting}/u{self.n_users:02d}"

    @property
    def seed(self) -> int:
        """Per-cell dataset seed, derived from the key so cells never share
        (or shift) RNG streams when the matrix grows or shrinks."""
        return (self.base_seed + zlib.crc32(self.key.encode("ascii"))) % (2**31)

    def plan(self) -> FloorPlan:
        return BUILDING_BUILDERS[self.building]()

    def crowd_config(self) -> CrowdConfig:
        return CrowdConfig(
            n_users=self.n_users,
            sws_per_user=self.sws_per_user,
            srs_rooms_per_user=self.srs_rooms_per_user,
            night_fraction=1.0 if self.lighting == "night" else 0.0,
            seed=self.seed,
            render_frames=self.render_frames,
        )

    def generate(self) -> CrowdDataset:
        """Simulate this cell's crowdsourcing campaign."""
        return generate_crowd_dataset(self.plan(), self.crowd_config())


def scenario_matrix(
    buildings: Sequence[str] = ("Lab1", "Lab2", "Gym"),
    lightings: Sequence[str] = ("day",),
    crowd_sizes: Sequence[int] = (3,),
    base_seed: int = 11,
    sws_per_user: int = 2,
    srs_rooms_per_user: int = 1,
) -> List[ScenarioSpec]:
    """The cross product of buildings × lightings × crowd sizes, in a
    deterministic order (buildings outermost, crowd sizes innermost)."""
    return [
        ScenarioSpec(
            building=building,
            lighting=lighting,
            n_users=n_users,
            sws_per_user=sws_per_user,
            srs_rooms_per_user=srs_rooms_per_user,
            base_seed=base_seed,
        )
        for building in buildings
        for lighting in lightings
        for n_users in crowd_sizes
    ]


def _densify_gym(specs: Iterable[ScenarioSpec]) -> List[ScenarioSpec]:
    """Give Gym cells a denser crowd, like the paper's own campaign.

    The Gym's ~600 m² open hall needs more walkers to reach the areal
    coverage the lab corridors get from a handful (the paper's gym
    dataset was its largest for the same reason; benchmarks/_shared.py
    applies the same +3 users / +1 walk bump).
    """
    dense = []
    for spec in specs:
        if spec.building == "Gym":
            spec = replace(
                spec,
                n_users=spec.n_users + 3,
                sws_per_user=spec.sws_per_user + 1,
            )
        dense.append(spec)
    return dense


def quick_scenarios(base_seed: int = 11) -> List[ScenarioSpec]:
    """The committed-baseline grid: four buildings by day, plus one
    night cell — small enough for a CI gate, wide enough that hallway,
    room and lighting regressions all move at least one cell."""
    specs = scenario_matrix(
        buildings=("Lab1", "Lab2", "Gym", "Office"), base_seed=base_seed
    )
    specs += scenario_matrix(
        buildings=("Lab1",), lightings=("night",), base_seed=base_seed
    )
    return _densify_gym(specs)


def full_scenarios(base_seed: int = 11) -> List[ScenarioSpec]:
    """The quick grid plus the remaining night cells and a Lab1
    accuracy-vs-crowd-size sweep (the curve the paper could not collect:
    procedural ground truth makes the sweep free)."""
    specs = quick_scenarios(base_seed)
    specs += _densify_gym(
        scenario_matrix(
            buildings=("Lab2", "Gym"), lightings=("night",), base_seed=base_seed
        )
    )
    specs += scenario_matrix(
        buildings=("Lab1",), crowd_sizes=(1, 2, 5), base_seed=base_seed
    )
    return specs


def scenarios_for_profile(
    profile: str, base_seed: int = 11
) -> List[ScenarioSpec]:
    """The scenario grid for a named profile (``"quick"`` or ``"full"``)."""
    if profile == "quick":
        return quick_scenarios(base_seed)
    if profile == "full":
        return full_scenarios(base_seed)
    raise ValueError(f"profile must be 'quick' or 'full', got {profile!r}")


def find_scenarios(
    specs: Sequence[ScenarioSpec], keys: Optional[Sequence[str]]
) -> List[ScenarioSpec]:
    """Subset ``specs`` by cell key (``None`` keeps everything)."""
    if not keys:
        return list(specs)
    by_key = {spec.key: spec for spec in specs}
    missing = [key for key in keys if key not in by_key]
    if missing:
        raise KeyError(
            f"unknown scenario cell(s) {missing}; known: {sorted(by_key)}"
        )
    return [by_key[key] for key in keys]


def fleet_scenarios(
    buildings: Sequence[str] = ("Lab1", "Lab2"),
    n_users: int = 3,
    sws_per_user: int = 1,
    srs_rooms_per_user: int = 1,
    base_seed: int = 11,
    render_frames: bool = False,
) -> List[ScenarioSpec]:
    """One sensor-only campaign spec per building for a fleet simulation.

    Seeds still derive from the cell key, so a fleet run over
    ``("Lab1", "Lab2")`` and one over ``("Lab1",)`` observe the *same*
    Lab1 crowd — which is what makes fused-vs-central comparisons across
    configurations meaningful.
    """
    return [
        ScenarioSpec(
            building=building,
            n_users=n_users,
            sws_per_user=sws_per_user,
            srs_rooms_per_user=srs_rooms_per_user,
            base_seed=base_seed,
            render_frames=render_frames,
        )
        for building in buildings
    ]


def slice_sessions(
    sessions: Sequence, n_nodes: int, overlap: float = 0.25, seed: int = 0
) -> List[List]:
    """Deal a crowd's sessions across ``n_nodes`` overlapping slices.

    Every session lands on a primary node round-robin (so slices stay
    balanced and jointly exhaustive), and with probability ``overlap``
    additionally on one other node — the partial-overlap regime the fleet
    fusion layer must reconcile. Each session's extra assignment is drawn
    from a generator keyed by ``(seed, session_id)``, so the slicing is
    independent of list order and of how many other sessions exist.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    slices: List[List] = [[] for _ in range(n_nodes)]
    for i, session in enumerate(sessions):
        primary = i % n_nodes
        slices[primary].append(session)
        if n_nodes == 1:
            continue
        token = f"{seed}:slice:{session.session_id}"
        rng = np.random.default_rng(zlib.crc32(token.encode("utf-8")))
        if float(rng.random()) < overlap:
            secondary = int(rng.integers(n_nodes - 1))
            if secondary >= primary:
                secondary += 1
            slices[secondary].append(session)
    return slices
