"""Synthetic world substrate: buildings, rendering, and the simulated crowd.

The paper's dataset — 301 sensor-rich videos shot by 25 volunteers across
three college buildings — cannot be collected offline. This package
synthesizes an equivalent: procedurally generated ground-truth buildings
(:mod:`repro.world.buildings`), a textured 2.5D raycasting renderer that
produces real RGB frames (:mod:`repro.world.renderer`), day/night lighting
(:mod:`repro.world.lighting`), a walker that executes the paper's SRS and
SWS micro-tasks (:mod:`repro.world.walker`), and a crowd generator that
composes them into whole crowdsourced datasets (:mod:`repro.world.crowd`).
"""

from repro.world.floorplan_model import Door, FloorPlan, Room, Wall
from repro.world.buildings import build_lab1, build_lab2, build_gym, BUILDING_BUILDERS
from repro.world.textures import WallTexture, value_noise
from repro.world.lighting import LightingCondition, DAYLIGHT, NIGHT
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile, CaptureSession
from repro.world.crowd import CrowdConfig, generate_crowd_dataset, CrowdDataset
from repro.world.dataset_io import save_dataset, load_dataset
from repro.world.scenarios import (
    ScenarioSpec,
    scenario_matrix,
    quick_scenarios,
    full_scenarios,
    scenarios_for_profile,
    find_scenarios,
    fleet_scenarios,
    slice_sessions,
)

__all__ = [
    "Door",
    "FloorPlan",
    "Room",
    "Wall",
    "build_lab1",
    "build_lab2",
    "build_gym",
    "BUILDING_BUILDERS",
    "WallTexture",
    "value_noise",
    "LightingCondition",
    "DAYLIGHT",
    "NIGHT",
    "Camera",
    "Renderer",
    "Walker",
    "WalkerProfile",
    "CaptureSession",
    "CrowdConfig",
    "generate_crowd_dataset",
    "CrowdDataset",
    "save_dataset",
    "load_dataset",
    "ScenarioSpec",
    "scenario_matrix",
    "quick_scenarios",
    "full_scenarios",
    "scenarios_for_profile",
    "find_scenarios",
    "fleet_scenarios",
    "slice_sessions",
]
