"""Polygon rasterization and mask-based set operations.

CrowdMap evaluates hallway shape by overlaying the reconstructed skeleton on
the ground-truth skeleton and measuring overlap area (paper Eq. 3-5). Exact
polygon boolean operations are unnecessary for that: we rasterize both shapes
onto a fine occupancy mask and compute areas cell-wise, which matches the
paper's own occupancy-grid representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import BoundingBox, Point, Polygon


def polygon_area(polygon: Polygon) -> float:
    """Absolute shoelace area of ``polygon`` in square metres."""
    return polygon.area()


def point_in_polygon(p: Point, polygon: Polygon) -> bool:
    """Even-odd ray-casting point-in-polygon test (boundary counts as inside)."""
    verts = polygon.vertices
    inside = False
    n = len(verts)
    for i in range(n):
        a, b = verts[i], verts[(i + 1) % n]
        if Point(a.x, a.y).distance_to(p) < 1e-12:
            return True
        intersects = (a.y > p.y) != (b.y > p.y)
        if intersects:
            x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
            if p.x < x_cross:
                inside = not inside
            elif abs(p.x - x_cross) < 1e-12:
                return True
    return inside


def rasterize_polygon(
    polygon: Polygon,
    bounds: BoundingBox,
    cell_size: float,
) -> np.ndarray:
    """Rasterize ``polygon`` into a boolean mask over ``bounds``.

    The mask has shape ``(rows, cols)`` where row 0 is the *southern* edge
    (min_y), matching the occupancy-grid convention used across the project.
    A cell is set when its centre lies inside the polygon (even-odd rule),
    computed with a vectorized scanline crossing count.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    cols = max(1, int(np.ceil(bounds.width / cell_size)))
    rows = max(1, int(np.ceil(bounds.height / cell_size)))
    xs = bounds.min_x + (np.arange(cols) + 0.5) * cell_size
    ys = bounds.min_y + (np.arange(rows) + 0.5) * cell_size
    gx, gy = np.meshgrid(xs, ys)  # (rows, cols)

    verts = np.array([[v.x, v.y] for v in polygon.vertices])
    n = len(verts)
    inside = np.zeros((rows, cols), dtype=bool)
    for i in range(n):
        ax, ay = verts[i]
        bx, by = verts[(i + 1) % n]
        crosses = (ay > gy) != (by > gy)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = ax + (gy - ay) * (bx - ax) / (by - ay)
        hit = crosses & (gx < x_cross)
        inside ^= hit
    return inside


def rasterize_polygons(
    polygons: Iterable[Polygon],
    bounds: BoundingBox,
    cell_size: float,
) -> np.ndarray:
    """Union rasterization of several polygons onto a shared mask."""
    mask: np.ndarray | None = None
    for poly in polygons:
        raster = rasterize_polygon(poly, bounds, cell_size)
        mask = raster if mask is None else (mask | raster)
    if mask is None:
        cols = max(1, int(np.ceil(bounds.width / cell_size)))
        rows = max(1, int(np.ceil(bounds.height / cell_size)))
        mask = np.zeros((rows, cols), dtype=bool)
    return mask


def mask_iou(a: np.ndarray, b: np.ndarray) -> float:
    """Intersection-over-union of two boolean masks of identical shape."""
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")
    union = np.count_nonzero(a | b)
    if union == 0:
        return 0.0
    return np.count_nonzero(a & b) / union


def bounding_box_iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection-over-union of two axis-aligned boxes (0 when disjoint).

    Room-shape IoU for the scorecard: reconstructed rooms are
    near-axis-aligned rectangles and ground-truth rooms are exact ones,
    so the axis-aligned bound is the natural common denominator (the same
    simplification :meth:`PlacedRoom.bounding_box` makes for overlap
    forces).
    """
    ix = min(a.max_x, b.max_x) - max(a.min_x, b.min_x)
    iy = min(a.max_y, b.max_y) - max(a.min_y, b.min_y)
    if ix <= 0.0 or iy <= 0.0:
        return 0.0
    intersection = ix * iy
    union = a.area() + b.area() - intersection
    if union <= 0.0:
        return 0.0
    return intersection / union


def mask_precision_recall(
    generated: np.ndarray, truth: np.ndarray
) -> Tuple[float, float, float]:
    """Precision, recall and F-measure of a generated mask vs ground truth.

    Implements the paper's hallway-shape metrics (Eq. 3-5): precision is
    overlap area over generated area, recall is overlap area over true area,
    F is their harmonic mean.
    """
    if generated.shape != truth.shape:
        raise ValueError(f"mask shapes differ: {generated.shape} vs {truth.shape}")
    overlap = np.count_nonzero(generated & truth)
    gen_area = np.count_nonzero(generated)
    true_area = np.count_nonzero(truth)
    precision = overlap / gen_area if gen_area else 0.0
    recall = overlap / true_area if true_area else 0.0
    if precision + recall <= 0.0:
        f_measure = 0.0
    else:
        f_measure = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f_measure


def mask_centroid(mask: np.ndarray, bounds: BoundingBox, cell_size: float) -> Point:
    """World-coordinate centroid of the set cells of ``mask``."""
    rows, cols = np.nonzero(mask)
    if rows.size == 0:
        return bounds.center
    x = bounds.min_x + (cols.mean() + 0.5) * cell_size
    y = bounds.min_y + (rows.mean() + 0.5) * cell_size
    return Point(float(x), float(y))


def convex_hull(points: Sequence[Point]) -> Polygon:
    """Andrew's monotone-chain convex hull of at least 3 non-collinear points."""
    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) < 3:
        raise ValueError("need at least 3 distinct points for a hull")

    def half_hull(sequence: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
        hull: list[Tuple[float, float]] = []
        for p in sequence:
            while len(hull) >= 2:
                ox, oy = hull[-2]
                ax, ay = hull[-1]
                if (ax - ox) * (p[1] - oy) - (ay - oy) * (p[0] - ox) <= 0:
                    hull.pop()
                else:
                    break
            hull.append(p)
        return hull

    lower = half_hull(pts)
    upper = half_hull(list(reversed(pts)))
    ring = lower[:-1] + upper[:-1]
    if len(ring) < 3:
        raise ValueError("points are collinear; hull is degenerate")
    return Polygon([Point(x, y) for x, y in ring])
