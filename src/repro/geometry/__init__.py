"""Geometry substrate for CrowdMap.

Plain 2D computational-geometry building blocks used throughout the
reconstruction pipeline: points, segments, polygons and rigid transforms
(:mod:`repro.geometry.primitives`), rasterization and area/IoU operations
(:mod:`repro.geometry.polygon_ops`), alpha-shape boundary extraction
(:mod:`repro.geometry.alpha_shape`) and the skeleton-to-ground-truth
alignment search used by the evaluation (:mod:`repro.geometry.alignment`).
"""

from repro.geometry.primitives import (
    Point,
    Segment,
    Polygon,
    BoundingBox,
    Transform2D,
    angle_difference,
    wrap_angle,
)
from repro.geometry.polygon_ops import (
    polygon_area,
    rasterize_polygon,
    mask_iou,
    mask_precision_recall,
    bounding_box_iou,
    point_in_polygon,
)
from repro.geometry.alpha_shape import alpha_shape_mask, alpha_shape_edges
from repro.geometry.alignment import align_masks, AlignmentResult

__all__ = [
    "Point",
    "Segment",
    "Polygon",
    "BoundingBox",
    "Transform2D",
    "angle_difference",
    "wrap_angle",
    "polygon_area",
    "rasterize_polygon",
    "mask_iou",
    "mask_precision_recall",
    "bounding_box_iou",
    "point_in_polygon",
    "alpha_shape_mask",
    "alpha_shape_edges",
    "align_masks",
    "AlignmentResult",
]
