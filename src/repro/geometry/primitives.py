"""Basic 2D geometric primitives.

Everything in the CrowdMap pipeline lives in a right-handed metric floor
coordinate system: x grows east, y grows north, angles are radians measured
counter-clockwise from +x. These primitives are deliberately small immutable
value types so they can be freely passed between the world simulator, the
sensor models and the reconstruction code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.contracts import shaped

TWO_PI = 2.0 * math.pi


def wrap_angle(theta: float) -> float:
    """Wrap an angle in radians into ``(-pi, pi]``."""
    wrapped = math.fmod(theta + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def angle_difference(a: float, b: float) -> float:
    """Signed smallest difference ``a - b`` wrapped into ``(-pi, pi]``."""
    return wrap_angle(a - b)


@dataclass(frozen=True)
class Point:
    """A 2D point (or vector) in metres."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Point") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Point":
        n = self.norm()
        if n <= 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def rotated(self, theta: float) -> "Point":
        """Rotate counter-clockwise about the origin by ``theta`` radians."""
        c, s = math.cos(theta), math.sin(theta)
        return Point(c * self.x - s * self.y, s * self.x + c * self.y)

    def heading(self) -> float:
        """Angle of this vector from +x, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=np.float64)

    @staticmethod
    def from_polar(radius: float, theta: float) -> "Point":
        return Point(radius * math.cos(theta), radius * math.sin(theta))


@dataclass(frozen=True)
class Segment:
    """A directed line segment between two points."""

    a: Point
    b: Point

    def length(self) -> float:
        return self.a.distance_to(self.b)

    def direction(self) -> Point:
        return (self.b - self.a).normalized()

    def heading(self) -> float:
        return (self.b - self.a).heading()

    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` (0 at ``a``, 1 at ``b``)."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point on the segment."""
        d = self.b - self.a
        len_sq = d.dot(d)
        if len_sq <= 0.0:
            return self.a.distance_to(p)
        t = (p - self.a).dot(d) / len_sq
        t = min(1.0, max(0.0, t))
        return self.point_at(t).distance_to(p)

    def intersects(self, other: "Segment") -> bool:
        """True if the two closed segments intersect."""

        def orient(p: Point, q: Point, r: Point) -> float:
            return (q - p).cross(r - p)

        def on_segment(p: Point, q: Point, r: Point) -> bool:
            return (
                min(p.x, r.x) <= q.x <= max(p.x, r.x)
                and min(p.y, r.y) <= q.y <= max(p.y, r.y)
            )

        d1 = orient(other.a, other.b, self.a)
        d2 = orient(other.a, other.b, self.b)
        d3 = orient(self.a, self.b, other.a)
        d4 = orient(self.a, self.b, other.b)
        if ((d1 > 0 > d2) or (d1 < 0 < d2)) and ((d3 > 0 > d4) or (d3 < 0 < d4)):
            return True
        if d1 == 0 and on_segment(other.a, self.a, other.b):
            return True
        if d2 == 0 and on_segment(other.a, self.b, other.b):
            return True
        if d3 == 0 and on_segment(self.a, other.a, self.b):
            return True
        if d4 == 0 and on_segment(self.a, other.b, self.b):
            return True
        return False

    def intersection(self, other: "Segment") -> Point | None:
        """Intersection point of the two segments, or None if disjoint/parallel."""
        r = self.b - self.a
        s = other.b - other.a
        denom = r.cross(s)
        if denom == 0.0:  # crowdlint: allow[CM004] exact-zero cross product is the parallel test; an epsilon would misclassify long nearly-parallel walls
            return None
        qp = other.a - self.a
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if 0.0 <= t <= 1.0 and 0.0 <= u <= 1.0:
            return self.point_at(t)
        return None


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError("BoundingBox min must not exceed max")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def area(self) -> float:
        return self.width * self.height

    def contains(self, p: Point) -> bool:
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def expanded(self, margin: float) -> "BoundingBox":
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    @staticmethod
    def of_points(points: Iterable[Point]) -> "BoundingBox":
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))


class Polygon:
    """A simple polygon given by its vertices in order (CW or CCW)."""

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        self._vertices: Tuple[Point, ...] = tuple(vertices)

    @property
    def vertices(self) -> Tuple[Point, ...]:
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._vertices)

    def edges(self) -> List[Segment]:
        verts = self._vertices
        return [Segment(verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))]

    def signed_area(self) -> float:
        """Shoelace area; positive for counter-clockwise winding."""
        total = 0.0
        verts = self._vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            total += v.cross(w)
        return total / 2.0

    def area(self) -> float:
        return abs(self.signed_area())

    def perimeter(self) -> float:
        return sum(e.length() for e in self.edges())

    def centroid(self) -> Point:
        """Area centroid (falls back to vertex mean for degenerate polygons)."""
        a = self.signed_area()
        if abs(a) < 1e-12:
            xs = sum(v.x for v in self._vertices) / len(self._vertices)
            ys = sum(v.y for v in self._vertices) / len(self._vertices)
            return Point(xs, ys)
        cx = cy = 0.0
        verts = self._vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            cross = v.cross(w)
            cx += (v.x + w.x) * cross
            cy += (v.y + w.y) * cross
        return Point(cx / (6.0 * a), cy / (6.0 * a))

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.of_points(self._vertices)

    def contains(self, p: Point) -> bool:
        from repro.geometry.polygon_ops import point_in_polygon

        return point_in_polygon(p, self)

    def translated(self, offset: Point) -> "Polygon":
        return Polygon([v + offset for v in self._vertices])

    def rotated(self, theta: float, about: Point | None = None) -> "Polygon":
        pivot = about if about is not None else Point(0.0, 0.0)
        return Polygon([(v - pivot).rotated(theta) + pivot for v in self._vertices])

    def scaled(self, factor: float, about: Point | None = None) -> "Polygon":
        pivot = about if about is not None else self.centroid()
        return Polygon([(v - pivot) * factor + pivot for v in self._vertices])

    @staticmethod
    def rectangle(center: Point, width: float, height: float, theta: float = 0.0) -> "Polygon":
        """Axis-aligned rectangle of ``width`` x ``height``, rotated by ``theta``."""
        hw, hh = width / 2.0, height / 2.0
        corners = [Point(-hw, -hh), Point(hw, -hh), Point(hw, hh), Point(-hw, hh)]
        return Polygon([c.rotated(theta) + center for c in corners])

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.2f})"


@dataclass(frozen=True)
class Transform2D:
    """Rigid 2D transform: rotation by ``theta`` about origin, then translation."""

    theta: float
    tx: float
    ty: float

    def apply(self, p: Point) -> Point:
        return p.rotated(self.theta) + Point(self.tx, self.ty)

    @shaped(xy="(N,2)", out="(N,2)")
    def apply_array(self, xy: np.ndarray) -> np.ndarray:
        """Apply to an (N, 2) array of points."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        rot = np.array([[c, -s], [s, c]])
        return xy @ rot.T + np.array([self.tx, self.ty])

    def inverse(self) -> "Transform2D":
        c, s = math.cos(self.theta), math.sin(self.theta)
        # Inverse rotation applied to the negated translation.
        inv_tx = -(c * self.tx + s * self.ty)
        inv_ty = -(-s * self.tx + c * self.ty)
        return Transform2D(-self.theta, inv_tx, inv_ty)

    def compose(self, other: "Transform2D") -> "Transform2D":
        """Return the transform equivalent to applying ``other`` then ``self``."""
        moved = Point(other.tx, other.ty).rotated(self.theta)
        return Transform2D(
            wrap_angle(self.theta + other.theta),
            self.tx + moved.x,
            self.ty + moved.y,
        )

    @staticmethod
    def identity() -> "Transform2D":
        return Transform2D(0.0, 0.0, 0.0)
