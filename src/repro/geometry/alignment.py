"""Skeleton-to-ground-truth alignment search.

Paper Section V.A: "the reconstructed indoor path skeleton is overlaid onto
the ground truth to achieve maximum cover area by moving and rotating the
center point". The reconstruction lives in an arbitrary crowdsourced local
frame, so before scoring we search over a small set of rigid transforms
(rotation about the mask centroid plus translation) and keep the one that
maximizes overlap with the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.contracts import shaped
from repro.geometry.polygon_ops import mask_precision_recall


@dataclass(frozen=True)
class AlignmentResult:
    """Best rigid alignment found between two masks and its quality."""

    rotation_deg: float
    shift_rows: int
    shift_cols: int
    precision: float
    recall: float
    f_measure: float
    aligned: np.ndarray

    def as_tuple(self) -> Tuple[float, float, float]:
        return self.precision, self.recall, self.f_measure


def _rotate_mask(mask: np.ndarray, angle_deg: float) -> np.ndarray:
    """Rotate a boolean mask about its centroid by ``angle_deg`` (CCW).

    Uses inverse nearest-neighbour mapping so thin structures stay connected.
    Cells rotated outside the frame are dropped.
    """
    if angle_deg % 360 == 0:
        return mask.copy()
    rows, cols = mask.shape
    occupied = np.nonzero(mask)
    if occupied[0].size == 0:
        return mask.copy()
    # Re-centre the content first so the rotation cannot push it out of
    # the frame (the subsequent translation search absorbs the shift).
    mask = _shift_mask(
        mask,
        int(round((rows - 1) / 2.0 - occupied[0].mean())),
        int(round((cols - 1) / 2.0 - occupied[1].mean())),
    )
    occupied = np.nonzero(mask)
    cy = occupied[0].mean()
    cx = occupied[1].mean()
    theta = np.deg2rad(angle_deg)
    c, s = np.cos(theta), np.sin(theta)
    # Inverse map: for every output cell, sample the input cell.
    out_r, out_c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    rel_r = out_r - cy
    rel_c = out_c - cx
    src_r = np.round(c * rel_r + s * rel_c + cy).astype(int)
    src_c = np.round(-s * rel_r + c * rel_c + cx).astype(int)
    valid = (src_r >= 0) & (src_r < rows) & (src_c >= 0) & (src_c < cols)
    rotated = np.zeros_like(mask)
    rotated[valid] = mask[src_r[valid], src_c[valid]]
    return rotated


def _shift_mask(mask: np.ndarray, dr: int, dc: int) -> np.ndarray:
    """Shift a mask by whole cells, zero-filling the exposed border."""
    shifted = np.zeros_like(mask)
    rows, cols = mask.shape
    src_r0, src_r1 = max(0, -dr), min(rows, rows - dr)
    src_c0, src_c1 = max(0, -dc), min(cols, cols - dc)
    dst_r0, dst_r1 = max(0, dr), min(rows, rows + dr)
    dst_c0, dst_c1 = max(0, dc), min(cols, cols + dc)
    if src_r0 < src_r1 and src_c0 < src_c1:
        shifted[dst_r0:dst_r1, dst_c0:dst_c1] = mask[src_r0:src_r1, src_c0:src_c1]
    return shifted


def _centroid_shift(moving: np.ndarray, fixed: np.ndarray) -> Tuple[int, int]:
    mv = np.nonzero(moving)
    fx = np.nonzero(fixed)
    if mv[0].size == 0 or fx[0].size == 0:
        return 0, 0
    dr = int(round(fx[0].mean() - mv[0].mean()))
    dc = int(round(fx[1].mean() - mv[1].mean()))
    return dr, dc


@shaped(generated="(H,W)", truth="(H,W)")
def align_masks(
    generated: np.ndarray,
    truth: np.ndarray,
    rotations_deg: Sequence[float] = (0, 90, 180, 270),
    search_radius: int = 6,
    search_step: int = 1,
) -> AlignmentResult:
    """Find the rigid transform of ``generated`` best covering ``truth``.

    For each candidate rotation the masks are first centroid-aligned and then
    a local translation search of ``±search_radius`` cells (stride
    ``search_step``) refines the overlap. The returned alignment maximizes
    F-measure (the paper's headline hallway-shape metric).
    """
    if generated.shape != truth.shape:
        raise ValueError(
            f"masks must share a grid: {generated.shape} vs {truth.shape}"
        )
    best: AlignmentResult | None = None
    for angle in rotations_deg:
        rotated = _rotate_mask(generated, angle)
        # Two base shifts are tried: centroid alignment (good for complete
        # reconstructions) and "undo the rotation's recentring" (good for
        # partial, geo-referenced reconstructions whose centroid is far
        # from the truth's). The local search refines around both.
        bases = {_centroid_shift(rotated, truth)}
        if angle % 360 == 0:
            bases.add((0, 0))
        else:
            occupied = np.nonzero(generated)
            if occupied[0].size:
                rows, cols = generated.shape
                bases.add(
                    (
                        int(round(occupied[0].mean() - (rows - 1) / 2.0)),
                        int(round(occupied[1].mean() - (cols - 1) / 2.0)),
                    )
                )
        for base_dr, base_dc in bases:
            for dr in range(-search_radius, search_radius + 1, search_step):
                for dc in range(-search_radius, search_radius + 1, search_step):
                    candidate = _shift_mask(rotated, base_dr + dr, base_dc + dc)
                    p, r, f = mask_precision_recall(candidate, truth)
                    if best is None or f > best.f_measure:
                        best = AlignmentResult(
                            rotation_deg=float(angle),
                            shift_rows=base_dr + dr,
                            shift_cols=base_dc + dc,
                            precision=p,
                            recall=r,
                            f_measure=f,
                            aligned=candidate,
                        )
    assert best is not None  # rotations_deg is never empty in practice
    return best
