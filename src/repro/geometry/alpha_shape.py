"""Alpha-shape boundary extraction (Edelsbrunner et al., 1983).

The floor-path skeleton reconstruction (paper Section III.B.II, Fig. 3b-c)
marks the boundaries of the accessible-cell point cloud with an alpha shape:
Delaunay-triangulate the points, keep every triangle whose circumradius is at
most ``1/alpha``, and take the union of the kept triangles. We build the
triangulation with :class:`scipy.spatial.Delaunay` and expose both the kept
boundary edges and a rasterized mask of the shape.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.spatial import Delaunay, QhullError

from repro.core.contracts import shaped
from repro.geometry.primitives import BoundingBox, Point, Segment


def _circumradii(points: np.ndarray, simplices: np.ndarray) -> np.ndarray:
    """Circumradius of each Delaunay triangle (vectorized).

    For a triangle with side lengths a, b, c and area A the circumradius is
    ``a*b*c / (4*A)``; degenerate triangles get radius +inf.
    """
    pa = points[simplices[:, 0]]
    pb = points[simplices[:, 1]]
    pc = points[simplices[:, 2]]
    a = np.linalg.norm(pb - pc, axis=1)
    b = np.linalg.norm(pa - pc, axis=1)
    c = np.linalg.norm(pa - pb, axis=1)
    cross = (pb[:, 0] - pa[:, 0]) * (pc[:, 1] - pa[:, 1]) - (
        pb[:, 1] - pa[:, 1]
    ) * (pc[:, 0] - pa[:, 0])
    area = np.abs(cross) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        radii = (a * b * c) / (4.0 * area)
    radii[~np.isfinite(radii)] = np.inf
    return radii


def _kept_simplices(points: np.ndarray, alpha: float) -> Tuple[Delaunay, np.ndarray]:
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array")
    if len(points) < 3:
        raise ValueError("alpha shape needs at least 3 points")
    tri = Delaunay(points)
    radii = _circumradii(points, tri.simplices)
    keep = radii <= (1.0 / alpha)
    return tri, keep


@shaped(points="(N,2)")
def alpha_shape_edges(points: np.ndarray, alpha: float) -> List[Segment]:
    """Boundary edges of the alpha shape of ``points``.

    An edge is on the boundary when it belongs to exactly one kept triangle.
    Returns an unordered list of :class:`Segment`.
    """
    try:
        tri, keep = _kept_simplices(points, alpha)
    except QhullError:
        return []
    edge_count: dict[Tuple[int, int], int] = {}
    for simplex, kept in zip(tri.simplices, keep):
        if not kept:
            continue
        for i in range(3):
            u, v = simplex[i], simplex[(i + 1) % 3]
            key = (min(u, v), max(u, v))
            edge_count[key] = edge_count.get(key, 0) + 1
    segments = []
    for (u, v), count in edge_count.items():
        if count == 1:
            segments.append(
                Segment(
                    Point(float(points[u][0]), float(points[u][1])),
                    Point(float(points[v][0]), float(points[v][1])),
                )
            )
    return segments


@shaped(points="(N,2)", out="(?,?) bool")
def alpha_shape_mask(
    points: np.ndarray,
    alpha: float,
    bounds: BoundingBox,
    cell_size: float,
) -> np.ndarray:
    """Rasterized union of the alpha shape's kept triangles.

    Rasterizes each kept Delaunay triangle onto an occupancy mask over
    ``bounds`` (row 0 = southern edge). Falls back to marking only the input
    points when the triangulation is degenerate.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    cols = max(1, int(np.ceil(bounds.width / cell_size)))
    rows = max(1, int(np.ceil(bounds.height / cell_size)))
    mask = np.zeros((rows, cols), dtype=bool)

    def mark_points() -> np.ndarray:
        for x, y in points:
            col = int((x - bounds.min_x) / cell_size)
            row = int((y - bounds.min_y) / cell_size)
            if 0 <= row < rows and 0 <= col < cols:
                mask[row, col] = True
        return mask

    try:
        tri, keep = _kept_simplices(points, alpha)
    except (QhullError, ValueError):
        return mark_points()

    xs = bounds.min_x + (np.arange(cols) + 0.5) * cell_size
    ys = bounds.min_y + (np.arange(rows) + 0.5) * cell_size

    for simplex, kept in zip(tri.simplices, keep):
        if not kept:
            continue
        verts = points[simplex]
        min_x, min_y = verts.min(axis=0)
        max_x, max_y = verts.max(axis=0)
        c0 = np.searchsorted(xs, min_x - cell_size)
        c1 = np.searchsorted(xs, max_x + cell_size)
        r0 = np.searchsorted(ys, min_y - cell_size)
        r1 = np.searchsorted(ys, max_y + cell_size)
        if c0 >= c1 or r0 >= r1:
            continue
        gx, gy = np.meshgrid(xs[c0:c1], ys[r0:r1])
        inside = _points_in_triangle(gx, gy, verts)
        mask[r0:r1, c0:c1] |= inside
    if not mask.any():
        return mark_points()
    return mask


def _points_in_triangle(gx: np.ndarray, gy: np.ndarray, verts: np.ndarray) -> np.ndarray:
    """Vectorized barycentric point-in-triangle test for grids of points."""
    (x0, y0), (x1, y1), (x2, y2) = verts
    denom = (y1 - y2) * (x0 - x2) + (x2 - x1) * (y0 - y2)
    if abs(denom) < 1e-12:
        return np.zeros_like(gx, dtype=bool)
    l0 = ((y1 - y2) * (gx - x2) + (x2 - x1) * (gy - y2)) / denom
    l1 = ((y2 - y0) * (gx - x2) + (x0 - x2) * (gy - y2)) / denom
    l2 = 1.0 - l0 - l1
    eps = -1e-9
    return (l0 >= eps) & (l1 >= eps) & (l2 >= eps)
