"""Repeatable performance harness for the hot paths (``python -m repro.bench``).

Three layers of benchmark:

- **kernel** micro-benchmarks time the vectorized vision primitives (HOG,
  Gaussian blur, 2-D convolution, SURF detection, descriptor matching,
  LSD) on seeded synthetic rasters;
- **serving** benchmarks time the map-serving layer's virtual-clock
  router on stub shards (per-request orchestration overhead);
- **fleet** benchmarks time the multi-node gossip fusion tier from
  slice ingest to a fully converged mesh (nodes x rounds smoke);
- **pipeline** benchmarks time :class:`~repro.core.pipeline.CrowdMapPipeline`
  end-to-end on a generated crowd dataset, both cache-cold and — to show
  what the content-addressed cache buys incremental re-runs — cache-warm.

Every timing is also reported *normalized* by a calibration measurement
(a fixed 256x256 matmul timed on the same machine, same process), so the
committed ``BENCH_baseline.json`` remains comparable across machines of
different speeds: CI regression checks compare normalized values, not raw
seconds.

Only monotonic ``time.perf_counter`` is read (crowdlint CM002: library
code must not read the wall clock), so reports carry no timestamps —
provenance lives in git history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.baseline import (
    load_json_report,
    update_baseline_file,
    write_json_report,
)

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Cheap kernel benchmarks get several timed repeats (median selection);
#: pipeline runs get 3 repeats with min-of-N selection — the minimum is
#: the least noisy estimator for a deterministic workload on a shared
#: box, and the per-repeat spread is recorded in the report artifact.
_KERNEL_REPEATS = 5
_PIPELINE_REPEATS = 3
#: Sub-100 ms scenarios (serving, fleet) ride closest to scheduler noise:
#: a single preempted repeat can double their median, which is exactly
#: the flakiness the committed baseline's 2.2x fleet outlier recorded.
#: They get five repeats with min-of-N select — for a deterministic
#: workload every microsecond above the minimum is interference.
_FAST_SCENARIO_REPEATS = 5


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's timing, raw and calibration-normalized."""

    name: str
    seconds: float
    normalized: float  # seconds / calibration_seconds
    repeats: int
    select: str = "median"          # "median" or "min" of the repeats
    spread: Tuple[float, ...] = ()  # every repeat's raw seconds

    def to_json(self) -> dict:
        payload = {
            "seconds": round(self.seconds, 6),
            "normalized": round(self.normalized, 3),
            "repeats": self.repeats,
        }
        if self.repeats > 1:
            payload["select"] = self.select
            payload["spread_seconds"] = [round(t, 6) for t in self.spread]
        return payload


def calibrate(repeats: int = 7) -> float:
    """Median time of a fixed 256x256 float64 matmul on this machine.

    The unit every benchmark is normalized into: a machine twice as fast
    runs both the calibration and the benchmarks twice as fast, keeping
    the normalized ratio stable across hardware.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    a @ b  # warm-up (thread pools, allocator)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        a @ b
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _measure(
    fn: Callable[[], object], repeats: int, select: str = "median"
) -> Tuple[float, List[float]]:
    """``(selected, all_times)`` over ``repeats`` timed calls.

    ``median`` resists scheduler noise for cheap kernels that repeat many
    times; ``min`` is the right estimator for the expensive deterministic
    pipeline runs, where every microsecond above the minimum is
    interference, not workload.
    """
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    if select == "min":
        return float(min(times)), times
    return float(np.median(times)), times


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Median of ``repeats`` timed calls (median resists scheduler noise)."""
    return _measure(fn, repeats, "median")[0]


# ----------------------------------------------------------------------
# Kernel workloads (seeded, self-contained)
# ----------------------------------------------------------------------


def _synthetic_image(size: int = 128, channels: int = 3) -> np.ndarray:
    """A seeded raster with edge/blob structure so detectors find work."""
    rng = np.random.default_rng(42)
    yy, xx = np.mgrid[0:size, 0:size]
    base = (
        0.5
        + 0.25 * np.sin(xx / 7.0)
        + 0.25 * np.cos(yy / 11.0)
        + 0.1 * rng.standard_normal((size, size))
    )
    base = np.clip(base, 0.0, 1.0)
    if channels == 1:
        return base
    return np.stack([base, np.roll(base, 3, axis=0), np.roll(base, 3, axis=1)], axis=-1)


def _kernel_benches() -> List[Tuple[str, Callable[[], object], int]]:
    from repro.dataflow.dispatch import convolve2d_fft
    from repro.vision.filters import convolve2d, gaussian_blur
    from repro.vision.hog import hog_descriptor
    from repro.vision.image import to_grayscale
    from repro.vision.lsd import detect_line_segments
    from repro.vision.matching import match_descriptors
    from repro.vision.surf import detect_and_describe

    image = _synthetic_image(128)
    gray = to_grayscale(image)
    rng = np.random.default_rng(7)
    kernel5 = rng.standard_normal((5, 5))
    kernel21 = rng.standard_normal((21, 21))
    features = detect_and_describe(image, max_features=150)

    return [
        ("hog_descriptor_128", lambda: hog_descriptor(gray), _KERNEL_REPEATS),
        ("gaussian_blur_128", lambda: gaussian_blur(gray, 2.0), _KERNEL_REPEATS),
        ("convolve2d_5x5_128", lambda: convolve2d(gray, kernel5), _KERNEL_REPEATS),
        # The size-dispatch pair: at 21x21 taps the planner's cost model
        # picks FFT; the direct/fft gap here is the aggressive-mode win.
        ("convolve2d_21x21_direct", lambda: convolve2d(gray, kernel21), _KERNEL_REPEATS),
        ("convolve2d_21x21_fft", lambda: convolve2d_fft(gray, kernel21), _KERNEL_REPEATS),
        ("surf_detect_128", lambda: detect_and_describe(image), _KERNEL_REPEATS),
        (
            "match_descriptors_150",
            lambda: match_descriptors(features, features),
            _KERNEL_REPEATS,
        ),
        ("lsd_128", lambda: detect_line_segments(image), 3),
    ]


# ----------------------------------------------------------------------
# Pipeline workloads
# ----------------------------------------------------------------------


def _bench_dataset(profile: str):
    from repro.world.buildings import build_lab1
    from repro.world.crowd import CrowdConfig, generate_crowd_dataset

    if profile == "full":
        crowd = CrowdConfig(
            n_users=3, sws_per_user=2, srs_rooms_per_user=1, seed=11
        )
    else:
        crowd = CrowdConfig(
            n_users=2, sws_per_user=1, srs_rooms_per_user=1, seed=11
        )
    return generate_crowd_dataset(build_lab1(), crowd)


def _session_id(session) -> str:
    """Top-level no-op worker task (picklable) for transport benchmarks."""
    return session.session_id


def _pipeline_benches(profile: str) -> List[Tuple[str, Callable[[], object], int, str]]:
    import os

    from repro.backend.cache import ResultCache, set_cache
    from repro.core.config import CrowdMapConfig
    from repro.core.pipeline import CrowdMapPipeline
    from repro.backend.workers import map_parallel

    quick_dataset = _bench_dataset("quick")

    def run_pinned(dataset, config, cold: bool, mode: Optional[str]):
        """One pipeline run, optionally cache-cold and planner-pinned."""
        previous = os.environ.get("CROWDMAP_PLANNER")
        if mode is not None:
            os.environ["CROWDMAP_PLANNER"] = mode
        try:
            if cold:
                # Fresh cache: measures the pipeline, not memoization.
                set_cache(ResultCache(mode="memory"))
            return CrowdMapPipeline(config).run(dataset)
        finally:
            if mode is not None:
                if previous is None:
                    os.environ.pop("CROWDMAP_PLANNER", None)
                else:
                    os.environ["CROWDMAP_PLANNER"] = previous

    def cold_runner(dataset, config, mode: Optional[str] = None):
        return lambda: run_pinned(dataset, config, cold=True, mode=mode)

    def warm_runner(dataset, config, mode: Optional[str] = None):
        # Deliberately *not* resetting the cache: the preceding cold
        # scenario populated it, so this measures an incremental re-run.
        return lambda: run_pinned(dataset, config, cold=False, mode=mode)

    serial = CrowdMapConfig()
    n, sel = _PIPELINE_REPEATS, "min"
    benches: List[Tuple[str, Callable[[], object], int, str]] = [
        ("pipeline_lab1_quick", cold_runner(quick_dataset, serial), n, sel),
        ("pipeline_lab1_quick_cached_rerun", warm_runner(quick_dataset, serial), n, sel),
        # Same cold run fanned out over the process backend: "parallel"
        # ships frames as shared-memory handles (zero-copy transport),
        # "parallel_pickle" forces the serialized fallback — their gap is
        # what the shm arena buys end-to-end.
        (
            "pipeline_lab1_parallel",
            cold_runner(
                quick_dataset,
                CrowdMapConfig(worker_backend="process", worker_transport="shm"),
            ),
            n, sel,
        ),
        (
            "pipeline_lab1_parallel_pickle",
            cold_runner(
                quick_dataset,
                CrowdMapConfig(worker_backend="process", worker_transport="pickle"),
            ),
            n, sel,
        ),
        # Transport in isolation: fan the quick dataset's sessions out to
        # process workers that do no work, so the timing is purely
        # executor + frame transport (the paper's Spark shuffle analog).
        (
            "frames_transport_shm",
            lambda: map_parallel(
                _session_id, quick_dataset.sessions,
                max_workers=4, backend="process", transport="shm",
            ),
            3, "median",
        ),
        (
            "frames_transport_pickle",
            lambda: map_parallel(
                _session_id, quick_dataset.sessions,
                max_workers=4, backend="process", transport="pickle",
            ),
            3, "median",
        ),
    ]
    if profile == "full":
        full_dataset = _bench_dataset("full")
        benches += [
            ("pipeline_lab1_full", cold_runner(full_dataset, serial), n, sel),
            (
                "pipeline_lab1_full_cached_rerun",
                warm_runner(full_dataset, serial),
                n, sel,
            ),
            # Planner-pinned variants: `planned` is the dataflow graph
            # executed cache-cold (vs `pipeline_lab1_full`, which follows
            # the ambient CROWDMAP_PLANNER mode), and
            # `planned_incremental` is the warm rerun where every node
            # resolves from the graph-level cache — the scenario that
            # shows what graph skipping buys over the per-kernel
            # memoization of `pipeline_lab1_full_cached_rerun`.
            (
                "pipeline_lab1_planned",
                cold_runner(full_dataset, serial, mode="default"),
                n, sel,
            ),
            (
                "pipeline_lab1_planned_incremental",
                warm_runner(full_dataset, serial, mode="default"),
                n, sel,
            ),
            # The aggressive planner profile, cache-cold: approximate LSD
            # masking, the keyframe pre-screen and FFT dispatch under
            # their own cache namespace. Gated by the accuracy-band grid
            # (repro.eval --check), not bit-identity — this scenario is
            # the speed half of that contract.
            (
                "pipeline_lab1_aggressive",
                cold_runner(full_dataset, serial, mode="aggressive"),
                n, sel,
            ),
        ]
    return benches


# ----------------------------------------------------------------------
# Serving workloads
# ----------------------------------------------------------------------


def _serving_benches() -> List[Tuple[str, Callable[[], object], int, str]]:
    """Throughput of the serving layer's virtual-clock machinery.

    Stub snapshots + modeled service times: the benchmark measures the
    router/event-loop overhead per request (admission, dispatch, hedging,
    telemetry), not reconstruction or handler cost.
    """
    from repro.serving import (
        LoadProfile,
        ServingConfig,
        ShardManager,
        run_serving_simulation,
    )

    def run_throughput():
        manager = ShardManager(n_replicas=2)
        for building in ("Lab1", "Lab2", "Gym"):
            manager.shard_for(building, 1).publish_stub(0.0)
        report = run_serving_simulation(
            manager,
            config=ServingConfig(seed=0),
            profile=LoadProfile(duration=60.0, qps=120.0, seed=0),
        )
        assert report["requests"]["offered"] > 6000
        return report

    return [
        ("serving_throughput", run_throughput, _FAST_SCENARIO_REPEATS, "min")
    ]


# ----------------------------------------------------------------------
# Fleet workloads
# ----------------------------------------------------------------------


def _fleet_benches() -> List[Tuple[str, Callable[[], object], int, str]]:
    """Gossip convergence cost of the multi-node fusion tier.

    The crowd is generated once outside the timer (sensor-only, so it is
    cheap but still not the thing under test); the timed region is the
    fleet hot path — node construction, slice ingest, and anti-entropy
    rounds until every node's fused map is bit-identical to the union.
    """
    from repro.fleet import FleetNode, GossipConfig, GossipMesh
    from repro.fleet.sim import FleetSimConfig, build_fleet_crowd
    from repro.world.scenarios import slice_sessions

    config = FleetSimConfig(
        buildings=("Lab1",), n_nodes=4, users_per_building=2, max_rounds=64
    )
    sessions, _plans = build_fleet_crowd(config)

    def run_convergence():
        nodes = [
            FleetNode(node_id, config=config.evidence)
            for node_id in config.node_ids()
        ]
        slices = slice_sessions(
            sessions, config.n_nodes, overlap=config.overlap, seed=config.seed
        )
        for node, node_sessions in zip(nodes, slices):
            for session in node_sessions:
                node.ingest_session(session)
        mesh = GossipMesh(nodes, config=GossipConfig(seed=config.seed))
        for round_number in range(1, config.max_rounds + 1):
            mesh.run_round(float(round_number))
            if mesh.converged():
                break
        assert mesh.converged()
        return mesh

    return [
        ("fleet_convergence", run_convergence, _FAST_SCENARIO_REPEATS, "min")
    ]


# ----------------------------------------------------------------------
# Suite driver + baseline comparison
# ----------------------------------------------------------------------


def run_suite(
    profile: str = "quick",
    include: Optional[List[str]] = None,
    log: Callable[[str], None] = lambda line: None,
) -> dict:
    """Run the benchmark suite and return the JSON-ready report dict."""
    if profile not in ("quick", "full"):
        raise ValueError(f"profile must be 'quick' or 'full', got {profile!r}")
    calibration = calibrate()
    log(f"calibration: {calibration * 1e3:.3f} ms (256x256 matmul)")
    benches = (
        _kernel_benches()
        + _serving_benches()
        + _fleet_benches()
        + _pipeline_benches(profile)
    )
    results: Dict[str, BenchResult] = {}
    for bench in benches:
        name, fn, repeats = bench[0], bench[1], bench[2]
        select = bench[3] if len(bench) > 3 else "median"
        if include and name not in include:
            continue
        seconds, spread = _measure(fn, repeats, select)
        result = BenchResult(
            name=name,
            seconds=seconds,
            normalized=seconds / calibration,
            repeats=repeats,
            select=select,
            spread=tuple(spread),
        )
        results[name] = result
        jitter = (max(spread) - min(spread)) * 1e3 if repeats > 1 else 0.0
        log(
            f"{name:40s} {seconds * 1e3:10.2f} ms   "
            f"(normalized {result.normalized:9.1f}, n={repeats}, "
            f"{select}, spread {jitter:.2f} ms)"
        )
    return {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "calibration_seconds": round(calibration, 8),
        "benchmarks": {name: r.to_json() for name, r in results.items()},
    }


def _short_path(path: str) -> str:
    """Trim machine-specific prefixes so profile rows diff across hosts."""
    normalized = path.replace("\\", "/")
    for marker in ("/site-packages/", "/src/", "/lib/"):
        idx = normalized.find(marker)
        if idx >= 0:
            return normalized[idx + len(marker):]
    return normalized


def profile_scenario(
    name: str,
    top_n: int = 30,
    log: Callable[[str], None] = lambda line: None,
) -> dict:
    """Per-kernel cumulative-time breakdown of one benchmark scenario.

    Runs the scenario once unprofiled (imports, thread pools, allocator
    warm-up), then once under :mod:`cProfile`, and returns the ``top_n``
    rows by cumulative time. Rows are ordered by (cumtime desc, tottime
    desc, location asc) — fully deterministic for a given timing run, so
    two reports diff cleanly. This is the "start from data" entry point
    for cold-path work: ``python -m repro.bench --profile
    pipeline_lab1_full``; the CI bench job uploads the JSON as an
    artifact so every run leaves a breakdown behind.
    """
    import cProfile
    import pstats

    benches = (
        _kernel_benches()
        + _serving_benches()
        + _fleet_benches()
        + _pipeline_benches("full")
    )
    table = {bench[0]: bench[1] for bench in benches}
    if name not in table:
        known = ", ".join(sorted(table))
        raise ValueError(f"unknown scenario {name!r}; known: {known}")
    fn = table[name]
    fn()  # warm-up run: imports and pools, not the thing under test
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for location, row in stats.stats.items():
        filename, lineno, funcname = location
        cc, nc, tt, ct, _callers = row
        rows.append({
            "function": f"{_short_path(filename)}:{lineno}({funcname})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_seconds": round(tt, 6),
            "cumtime_seconds": round(ct, 6),
        })
    rows.sort(
        key=lambda r: (
            -r["cumtime_seconds"], -r["tottime_seconds"], r["function"]
        )
    )
    rows = rows[:top_n]
    log(f"profile: {name} (top {len(rows)} by cumulative time)")
    log(f"{'cumtime':>10s} {'tottime':>10s} {'ncalls':>10s}  function")
    for row in rows:
        log(
            f"{row['cumtime_seconds']:10.4f} {row['tottime_seconds']:10.4f} "
            f"{row['ncalls']:10d}  {row['function']}"
        )
    return {
        "schema": SCHEMA_VERSION,
        "scenario": name,
        "top_n": top_n,
        "rows": rows,
    }


#: Absolute slack (normalized units, ~1 calibration matmul each) added to
#: every regression budget. Scenarios the graph cache collapses to
#: sub-millisecond lookups sit below timer/scheduler noise, where a
#: purely relative tolerance flags 0.1 ms of jitter as an 85% regression;
#: the floor keeps the gate meaningful for them without loosening it for
#: scenarios whose budget is already thousands of normalized units.
NOISE_FLOOR_NORMALIZED = 2.0


def compare_to_baseline(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Normalized-time regressions beyond ``tolerance``, human-readable.

    Only benchmarks present in both reports are compared; an empty list
    means the run is within budget. The budget is relative
    (``tolerance``) plus the absolute :data:`NOISE_FLOOR_NORMALIZED`, so
    near-zero baselines cannot fail on timer jitter alone.
    """
    problems: List[str] = []
    base_marks = baseline.get("benchmarks", {})
    for name, current in report.get("benchmarks", {}).items():
        base = base_marks.get(name)
        if base is None:
            continue
        allowed = (
            base["normalized"] * (1.0 + tolerance) + NOISE_FLOOR_NORMALIZED
        )
        if current["normalized"] > allowed:
            problems.append(
                f"{name}: normalized {current['normalized']:.1f} exceeds "
                f"baseline {base['normalized']:.1f} "
                f"(+{(current['normalized'] / base['normalized'] - 1) * 100:.0f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return problems


def load_report(path: str) -> dict:
    return load_json_report(path, SCHEMA_VERSION)


def write_report(report: dict, path: str) -> None:
    write_json_report(report, path)


def update_baseline(path: str, report: dict) -> dict:
    """Rewrite the bench baseline, preserving its ``pre_pr*`` records."""
    return update_baseline_file(path, report, SCHEMA_VERSION)
