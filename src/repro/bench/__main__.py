"""CLI for the performance harness.

Usage:

    python -m repro.bench                         # quick suite to stdout
    python -m repro.bench --profile full          # adds the larger dataset
    python -m repro.bench --profile pipeline_lab1_full   # cProfile breakdown
    python -m repro.bench --output bench.json     # write the JSON report
    python -m repro.bench --check BENCH_baseline.json --tolerance 0.25
    python -m repro.bench --update-baseline BENCH_baseline.json

``--check`` exits 1 when any benchmark's *normalized* time regresses past
the tolerance versus the baseline file — the CI gate. ``--update-baseline``
rewrites the baseline with this run's numbers while preserving every
``pre_pr*`` record (the frozen pre-optimization measurements the speedup
claims are made against — one block per optimization PR).

``--profile`` doubles as the entry point for per-scenario profiling: any
value other than ``quick``/``full`` names one benchmark scenario, whose
per-kernel cumulative-time breakdown (cProfile, deterministic ordering)
is printed — and written as JSON with ``--output`` — instead of running
the suite. The CI bench job uploads one as an artifact so cold-path work
always starts from data.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    compare_to_baseline,
    load_report,
    profile_scenario,
    run_suite,
    update_baseline,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="CrowdMap performance harness",
    )
    parser.add_argument(
        "--profile", default="quick", metavar="PROFILE_OR_SCENARIO",
        help="suite profile ('quick': kernels + small pipeline; 'full': "
        "larger pipeline too) — or a benchmark scenario name (e.g. "
        "pipeline_lab1_full) to print that scenario's per-kernel "
        "cProfile breakdown instead of running the suite",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only the named benchmark (repeatable)",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown for --check (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline", metavar="BASELINE",
        help="rewrite the baseline with this run (keeps its pre_pr* records)",
    )
    args = parser.parse_args(argv)

    if args.profile not in ("quick", "full"):
        # Scenario-profiling mode: one scenario under cProfile, no suite
        # run — so no baseline flags either; --check/--update-baseline
        # compare suite reports, which this mode does not produce.
        if args.check or args.update_baseline:
            parser.error(
                "--check/--update-baseline need a suite run; they cannot "
                "be combined with a scenario --profile"
            )
        try:
            breakdown = profile_scenario(args.profile, log=print)
        except ValueError as exc:
            parser.error(str(exc))
        if args.output:
            write_report(breakdown, args.output)
            print(f"profile written to {args.output}")
        return 0

    report = run_suite(profile=args.profile, include=args.only, log=print)

    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}")

    if args.update_baseline:
        # Shared with the accuracy CLI (repro.bench.baseline): rewrites
        # the file from this run while preserving every pre_pr* record.
        report = update_baseline(args.update_baseline, report)
        print(f"baseline updated: {args.update_baseline}")

    if args.check:
        baseline = load_report(args.check)
        problems = compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            print(f"\nFAIL: {len(problems)} regression(s) vs {args.check}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"\nOK: within {args.tolerance * 100:.0f}% of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
