"""CLI for the performance harness.

Usage:

    python -m repro.bench                         # quick suite to stdout
    python -m repro.bench --profile full          # adds the larger dataset
    python -m repro.bench --output bench.json     # write the JSON report
    python -m repro.bench --check BENCH_baseline.json --tolerance 0.25
    python -m repro.bench --update-baseline BENCH_baseline.json

``--check`` exits 1 when any benchmark's *normalized* time regresses past
the tolerance versus the baseline file — the CI gate. ``--update-baseline``
rewrites the baseline with this run's numbers while preserving every
``pre_pr*`` record (the frozen pre-optimization measurements the speedup
claims are made against — one block per optimization PR).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    compare_to_baseline,
    load_report,
    run_suite,
    update_baseline,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="CrowdMap performance harness",
    )
    parser.add_argument(
        "--profile", choices=("quick", "full"), default="quick",
        help="quick: kernels + small pipeline; full: larger pipeline too",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only the named benchmark (repeatable)",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown for --check (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline", metavar="BASELINE",
        help="rewrite the baseline with this run (keeps its pre_pr* records)",
    )
    args = parser.parse_args(argv)

    report = run_suite(profile=args.profile, include=args.only, log=print)

    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}")

    if args.update_baseline:
        # Shared with the accuracy CLI (repro.bench.baseline): rewrites
        # the file from this run while preserving every pre_pr* record.
        report = update_baseline(args.update_baseline, report)
        print(f"baseline updated: {args.update_baseline}")

    if args.check:
        baseline = load_report(args.check)
        problems = compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            print(f"\nFAIL: {len(problems)} regression(s) vs {args.check}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"\nOK: within {args.tolerance * 100:.0f}% of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
