"""Shared baseline-file plumbing for the perf and accuracy gates.

``BENCH_baseline.json`` (speed) and ``ACCURACY_baseline.json`` (quality)
follow one contract so the two committed gates cannot diverge in format:

- a top-level ``"schema"`` integer, validated on load;
- stable serialization (``indent=2, sort_keys=True`` + trailing newline),
  so regenerated baselines diff cleanly and bit-compare across runs;
- ``--update-baseline`` rewrites the file from a fresh run while
  preserving every top-level key starting with ``pre_pr`` — the frozen
  historical records that improvement claims are made against.

Both CLIs (``python -m repro.bench`` and ``python -m repro.eval``) go
through these helpers rather than open-coding the read/modify/write.
"""

from __future__ import annotations

import json
from typing import Optional

#: Prefix of top-level keys that ``update_baseline_file`` carries over
#: from the previous baseline ("pre_pr", "pre_pr_shm", ...).
PRESERVED_PREFIX = "pre_pr"


def load_json_report(path: str, schema_version: Optional[int] = None) -> dict:
    """Load a report/baseline JSON, validating its schema when given."""
    with open(path) as fh:
        report = json.load(fh)
    if schema_version is not None and report.get("schema") != schema_version:
        raise ValueError(
            f"{path}: schema {report.get('schema')!r} != {schema_version}"
        )
    return report


def write_json_report(report: dict, path: str) -> None:
    """Write a report in the stable, diff-friendly baseline layout."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def update_baseline_file(
    path: str,
    report: dict,
    schema_version: Optional[int] = None,
    preserve_prefix: str = PRESERVED_PREFIX,
) -> dict:
    """Rewrite ``path`` from ``report``, keeping its ``pre_pr*`` records.

    A missing or unreadable previous baseline is treated as empty (first
    generation); a previous baseline with the wrong schema is an error —
    silently dropping its preserved records would lose history.
    Returns the merged report that was written.
    """
    try:
        previous = load_json_report(path, schema_version)
    except (OSError, json.JSONDecodeError):
        previous = {}
    merged = dict(report)
    for key, value in previous.items():
        if key.startswith(preserve_prefix):
            merged[key] = value
    write_json_report(merged, path)
    return merged
