#!/usr/bin/env python
"""Indoor localization on the reconstructed map — the paper's motivation.

First CrowdMap builds the Lab1 floor plan from a simulated crowd; then a
*new* visitor walks the corridor taking snapshots, and the visual
localizer places each snapshot on the reconstructed map by matching it
against the crowd's key-frame corpus. Localization error is reported
against the visitor's hidden ground truth.

Run:  python examples/localization.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import CrowdMapConfig, CrowdMapPipeline, VisualLocalizer
from repro.eval.report import render_table
from repro.world import CrowdConfig, build_lab1, generate_crowd_dataset
from repro.world.walker import Walker, WalkerProfile


def main() -> None:
    plan = build_lab1()
    print("Reconstructing Lab1 from a simulated crowd ...")
    dataset = generate_crowd_dataset(
        plan, CrowdConfig(n_users=5, sws_per_user=3, srs_rooms_per_user=1,
                          seed=21)
    )
    config = CrowdMapConfig().with_overrides(layout_samples=600)
    result = CrowdMapPipeline(config).run(dataset)
    localizer = VisualLocalizer(result, config)
    print(f"  key-frame database: {len(localizer)} entries")

    print("A new visitor walks the south corridor taking snapshots ...")
    visitor = Walker(plan, WalkerProfile(user_id="visitor"),
                     rng=np.random.default_rng(1234))
    session = visitor.perform_sws(plan.route_between("sw", "se"))
    queries = session.frames[2::6]

    rows = []
    errors = []
    matched = 0
    for frame in queries:
        estimate = localizer.localize(frame)
        truth = session.ground_truth.position_at(frame.timestamp)
        if estimate.matched:
            matched += 1
            error = math.hypot(
                estimate.position.x - truth.x, estimate.position.y - truth.y
            )
            errors.append(error)
            rows.append(
                [
                    f"t={frame.timestamp:.1f}s",
                    f"({truth.x:.1f}, {truth.y:.1f})",
                    f"({estimate.position.x:.1f}, {estimate.position.y:.1f})",
                    f"{error:.2f} m",
                    len(estimate.matches),
                ]
            )
        else:
            rows.append(
                [f"t={frame.timestamp:.1f}s",
                 f"({truth.x:.1f}, {truth.y:.1f})", "-", "no match", 0]
            )
    print(
        render_table(
            "Visual localization of the visitor's snapshots",
            ["query", "true position", "estimate", "error", "#matches"],
            rows,
        )
    )
    if errors:
        print(
            f"\nmatched {matched}/{len(queries)} queries; "
            f"median error {np.median(errors):.2f} m, "
            f"p90 {np.percentile(errors, 90):.2f} m"
        )
    print("Better maps -> better localization: the loop the paper motivates.")


if __name__ == "__main__":
    main()
