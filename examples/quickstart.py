#!/usr/bin/env python
"""Quickstart: reconstruct a full floor plan from a simulated crowd.

Builds the Lab1 ground-truth building, simulates a small crowdsourcing
campaign (users walking corridors with phones recording video + IMU, and
spinning inside rooms), runs the complete CrowdMap pipeline, and prints
the reconstructed floor plan next to the paper's evaluation metrics.

Run:  python examples/quickstart.py [--users N] [--seed S]
"""

from __future__ import annotations

import argparse
import time

from repro import CrowdMapConfig, CrowdMapPipeline
from repro.eval import evaluate_hallway_shape, evaluate_rooms
from repro.eval.report import render_table
from repro.world import CrowdConfig, build_lab1, generate_crowd_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=5,
                        help="number of simulated contributors")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print("Building Lab1 ground truth ...")
    plan = build_lab1()
    print(f"  {len(plan.rooms)} rooms, {len(plan.walls)} wall faces, "
          f"{plan.bounds.width:.0f} x {plan.bounds.height:.0f} m")

    print(f"Simulating a crowd of {args.users} users ...")
    t0 = time.perf_counter()
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(
            n_users=args.users,
            sws_per_user=3,
            srs_rooms_per_user=2,
            seed=args.seed,
        ),
    )
    print(f"  {len(dataset.sessions)} sessions, "
          f"{dataset.total_frames()} frames "
          f"({time.perf_counter() - t0:.1f} s)")

    print("Running the CrowdMap pipeline ...")
    pipeline = CrowdMapPipeline(CrowdMapConfig())
    result = pipeline.run(dataset)
    for stage, seconds in result.timings.items():
        print(f"  {stage:<10} {seconds:6.1f} s")

    print("\nReconstructed floor plan ('#' hallway, letters = rooms):\n")
    print(result.floorplan.render_ascii(max_width=90))

    hallway = evaluate_hallway_shape(result.skeleton, plan)
    rooms = evaluate_rooms(
        result.layouts, [p.room_hint for p in result.panoramas], plan,
        result.floorplan,
    )
    print()
    print(
        render_table(
            "Reconstruction quality vs ground truth",
            ["metric", "value"],
            [
                ["hallway precision", f"{hallway.precision:.1%}"],
                ["hallway recall", f"{hallway.recall:.1%}"],
                ["hallway F-measure", f"{hallway.f_measure:.1%}"],
                ["rooms reconstructed", len(result.layouts)],
                ["mean room area error", f"{rooms.mean_area_error():.1%}"],
                ["mean aspect ratio error", f"{rooms.mean_aspect_ratio_error():.1%}"],
                ["mean room location error", f"{rooms.mean_location_error():.2f} m"],
            ],
        )
    )


if __name__ == "__main__":
    main()
