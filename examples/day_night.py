#!/usr/bin/env python
"""Lighting robustness: matching the same place across day and night.

Renders the same Lab1 corridor viewpoints under daylight and incandescent
night lighting and reports how each rung of CrowdMap's comparison
hierarchy (color indexing, shape signature, wavelet signature, SURF S2)
scores same-place day-vs-night pairs against different-place day-day
pairs — the per-pair view behind the paper's Fig. 7b sweep.

Run:  python examples/day_night.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CrowdMapConfig, KeyframeComparator, select_keyframes
from repro.eval.report import render_table
from repro.geometry.primitives import Point
from repro.vision.image import Frame
from repro.world import DAYLIGHT, NIGHT, Renderer, build_lab1


def frame_at(renderer, x, y, heading, lighting, seed):
    pixels = renderer.render(
        Point(x, y), heading, lighting=lighting, rng=np.random.default_rng(seed)
    )
    return Frame(pixels=pixels, timestamp=0.0, heading=heading)


def main() -> None:
    plan = build_lab1()
    renderer = Renderer(plan)
    config = CrowdMapConfig()
    comparator = KeyframeComparator(config)

    spots = [(6.0, 1.25, 0.0), (16.0, 1.25, 0.0), (30.0, 1.25, 3.1415),
             (1.25, 8.0, 1.5708)]
    rows = []
    same_scores, diff_scores = [], []
    for i, (x, y, h) in enumerate(spots):
        day = frame_at(renderer, x, y, h, DAYLIGHT, seed=i)
        night = frame_at(renderer, x + 0.3, y + 0.05, h, NIGHT, seed=100 + i)
        other = spots[(i + 2) % len(spots)]
        elsewhere = frame_at(renderer, other[0], other[1], other[2],
                             DAYLIGHT, seed=200 + i)
        [kf_day] = select_keyframes([day], config)
        [kf_night] = select_keyframes([night], config)
        [kf_else] = select_keyframes([elsewhere], config)

        same = comparator.compare(kf_day, kf_night)
        s1_same = comparator.s1_score(kf_day, kf_night)
        diff = comparator.compare(kf_day, kf_else)
        s1_diff = comparator.s1_score(kf_day, kf_else)
        same_scores.append(same.s2)
        diff_scores.append(diff.s2)
        rows.append(
            [
                f"({x:.0f},{y:.0f})",
                f"{s1_same:.3f}",
                f"{same.s2:.3f}",
                "yes" if same.matched else "no",
                f"{s1_diff:.3f}",
                f"{diff.s2:.3f}",
                "yes" if diff.matched else "no",
            ]
        )

    print(
        render_table(
            "Day-vs-night same place  |  day-vs-day different place",
            ["spot", "S1 same", "S2 same", "match?",
             "S1 diff", "S2 diff", "match?"],
            rows,
        )
    )
    print(
        f"\nmean S2: same-place day/night {np.mean(same_scores):.3f}  "
        f"vs different-place {np.mean(diff_scores):.3f}"
    )
    print("CrowdMap's night tolerance (paper Fig. 7b) rests on this margin.")


if __name__ == "__main__":
    main()
