#!/usr/bin/env python
"""Room layout reconstruction: CrowdMap's visual method vs the baselines.

One user performs the Stay-Rotate-Stay micro-task inside several rooms of
the Lab2 building. For each room we reconstruct the layout three ways —

  1. CrowdMap (this paper): stitch the spin into a 360-degree panorama,
     extract the wall-boundary profile, and fit the best rectangular
     model by surface consistency;
  2. inertial-only (CrowdInside-style): wander the room, dead-reckon, and
     take the trace extent (fails where furniture blocks the walls);
  3. Jigsaw-style: the inertial wander plus one accurate image-derived
     wall at the room entrance —

and print area / aspect-ratio errors per room, reproducing the Fig. 8
comparison on a small scale.

Run:  python examples/room_reconstruction.py [--rooms N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import InertialRoomEstimator, JigsawRoomEstimator
from repro.core import PanoramaBuilder, RoomLayoutEstimator, select_keyframes
from repro.core.config import CrowdMapConfig
from repro.eval.report import render_table
from repro.eval.room_metrics import room_area_error, room_aspect_ratio_error
from repro.world import build_lab2
from repro.world.walker import Walker, WalkerProfile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rooms", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    plan = build_lab2()
    rng = np.random.default_rng(args.seed)
    walker = Walker(plan, WalkerProfile(user_id="demo"), rng=rng)
    config = CrowdMapConfig()
    builder = PanoramaBuilder(config)
    visual = RoomLayoutEstimator(config)
    inertial = InertialRoomEstimator(rng=np.random.default_rng(args.seed + 1))
    jigsaw = JigsawRoomEstimator(rng=np.random.default_rng(args.seed + 2))

    rows = []
    sums = {"visual": [0.0, 0.0], "inertial": [0.0, 0.0], "jigsaw": [0.0, 0.0]}
    rooms = plan.rooms[: args.rooms]
    for room in rooms:
        print(f"Reconstructing {room.name} "
              f"({room.width:.2f} x {room.depth:.2f} m) ...")
        session = walker.perform_srs(room.center, room_name=room.name)
        keyframes = select_keyframes(session.frames, config,
                                     session_id=session.session_id)
        pano = builder.build(keyframes, capture_position=room.center,
                             room_hint=room.name)
        estimates = {
            "visual": visual.estimate(pano),
            "inertial": inertial.estimate(room),
            "jigsaw": jigsaw.estimate(room),
        }
        for name, layout in estimates.items():
            area_err = room_area_error(layout, room)
            ar_err = room_aspect_ratio_error(layout, room)
            sums[name][0] += area_err
            sums[name][1] += ar_err
            rows.append(
                [
                    room.name,
                    name,
                    f"{layout.width:.2f} x {layout.depth:.2f}",
                    f"{area_err:.1%}",
                    f"{ar_err:.1%}",
                ]
            )

    print()
    print(
        render_table(
            "Room layout reconstruction (truth vs methods)",
            ["room", "method", "estimate (w x d)", "area err", "AR err"],
            rows,
        )
    )
    print()
    n = len(rooms)
    print(
        render_table(
            "Mean errors (paper: visual 9.8% / 6.5%; inertial 22.5% / 15.1%)",
            ["method", "mean area err", "mean AR err"],
            [
                [name, f"{s[0] / n:.1%}", f"{s[1] / n:.1%}"]
                for name, s in sums.items()
            ],
        )
    )


if __name__ == "__main__":
    main()
