#!/usr/bin/env python
"""The full client-cloud dataflow: uploads, storage, queue, pipeline.

Simulated mobile clients record SWS sessions in the Gym building, zip and
chunk them (the paper's 5 MB upload protocol, scaled down), and stream the
chunks — deliberately out of order — to the ingest server. A worker pool
drains the processing queue: each task decodes one upload, re-runs the
sensor processing server-side, and stores the anchored trajectory. A
scheduled aggregation job (the APScheduler stand-in) then fuses whatever
has arrived and reconstructs the floor path skeleton.

Run:  python examples/cloud_backend.py [--users N]
"""

from __future__ import annotations

import argparse
import json
import random

from repro.backend import (
    DocumentStore,
    IngestServer,
    SimulatedScheduler,
    TaskQueue,
    WorkerPool,
    chunk_payload,
)
from repro.backend.serialization import payload_to_session, session_to_payload
from repro.core import CrowdMapConfig, CrowdMapPipeline
from repro.core.skeleton import reconstruct_skeleton
from repro.eval import evaluate_hallway_shape
from repro.geometry.primitives import BoundingBox
from repro.world import CrowdConfig, build_gym, generate_crowd_dataset
from repro.world.renderer import Camera

CHUNK_SIZE = 64 * 1024  # scaled-down stand-in for the paper's 5 MB chunks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    plan = build_gym()
    print(f"Simulating {args.users} mobile clients in {plan.name} ...")
    dataset = generate_crowd_dataset(
        plan,
        CrowdConfig(
            n_users=args.users, sws_per_user=2, srs_rooms_per_user=0,
            seed=args.seed, camera=Camera(width=96, height=128),
        ),
    )

    # ---- cloud side ---------------------------------------------------
    store = DocumentStore()
    queue = TaskQueue()
    server = IngestServer(store, queue)
    config = CrowdMapConfig()
    pipeline = CrowdMapPipeline(config)

    def process_upload(task_payload):
        """Worker handler: decode one upload and anchor its trajectory."""
        doc = store.find_one(
            IngestServer.RAW_COLLECTION,
            {"upload_id": task_payload["upload_id"]},
        )
        payload = json.loads(doc["payload"].decode("utf-8"))
        session = payload_to_session(payload)
        anchored = pipeline.anchor_session(session)
        store.insert(
            "anchored",
            {
                "session_id": session.session_id,
                "n_keyframes": len(anchored.keyframes),
                "anchored": anchored,
            },
        )
        return len(anchored.keyframes)

    pool = WorkerPool(queue, n_workers=2)
    pool.register("process_upload", process_upload)

    # ---- clients upload (chunks shuffled to stress reassembly) ---------
    rng = random.Random(args.seed)
    print("Uploading sessions over the chunked protocol ...")
    for session in dataset.sessions:
        payload_bytes = json.dumps(session_to_payload(session)).encode("utf-8")
        upload_id = server.open_upload(
            session.user_id, {"building": session.building, "floor": session.floor}
        )
        chunks = chunk_payload(upload_id, payload_bytes, chunk_size=CHUNK_SIZE)
        rng.shuffle(chunks)
        for chunk in chunks:
            server.receive_chunk(chunk)
        doc_id = server.finalize_upload(upload_id)
        print(f"  {session.session_id}: {len(chunks)} chunks, "
              f"{len(payload_bytes) / 1024:.0f} KiB -> doc {doc_id}")

    print("Draining the processing queue with 2 workers ...")
    with pool:
        pool.drain(timeout=300.0)
    processed = store.count("anchored")
    print(f"  {processed} sessions processed into anchored trajectories")

    # ---- scheduled aggregation (cascade pipeline) ----------------------
    results = {}

    def aggregation_job():
        docs = store.find("anchored")
        anchored = [d["anchored"] for d in docs]
        if not anchored:
            return
        aggregation = pipeline.aggregator.aggregate(anchored)
        xs = [p.x for t in aggregation.trajectories for p in t.points]
        ys = [p.y for t in aggregation.trajectories for p in t.points]
        bounds = BoundingBox(min(xs) - 2, min(ys) - 2, max(xs) + 2, max(ys) + 2)
        results["skeleton"] = reconstruct_skeleton(
            aggregation.trajectories, bounds, config
        )
        results["aggregation"] = aggregation

    scheduler = SimulatedScheduler()
    scheduler.add_job("aggregate", interval=60.0, callback=aggregation_job)
    scheduler.advance(60.0)  # one simulated minute -> one aggregation pass

    skeleton = results["skeleton"]
    score = evaluate_hallway_shape(skeleton, plan)
    merged = len(results["aggregation"].merged_pairs())
    print(f"\nScheduled aggregation merged {merged} trajectory pairs.")
    print(f"Skeleton area: {skeleton.area():.0f} m^2")
    print(
        f"Hallway shape vs ground truth: precision {score.precision:.1%}, "
        f"recall {score.recall:.1%}, F {score.f_measure:.1%}"
    )


if __name__ == "__main__":
    main()
