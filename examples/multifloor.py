#!/usr/bin/env python
"""Multi-floor reconstruction from a mixed stream of uploads.

Two floors of the Lab1 building are crowdsourced in one campaign: users on
each storey walk SWS routes and spin in rooms, and one user climbs the
stairwell while recording (phone pocketed — IMU only). The backend tells
the floors apart from the barometer channel, reconstructs each floor
independently, and reports the stair link that connects the two maps —
the paper's Section VI recipe.

Run:  python examples/multifloor.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CrowdMapConfig
from repro.core.multifloor import MultiFloorPipeline
from repro.eval import evaluate_hallway_shape
from repro.eval.report import render_table
from repro.sensors.activity import FLOOR_HEIGHT
from repro.world import build_lab1
from repro.world.renderer import Camera, Renderer
from repro.world.walker import Walker, WalkerProfile


def main() -> None:
    plan = build_lab1()
    renderer = Renderer(plan, Camera())
    sessions = []
    print("Simulating two floors of uploads ...")
    for floor in (0, 1):
        for i in range(3):
            walker = Walker(
                plan,
                WalkerProfile(user_id=f"f{floor}u{i}"),
                rng=np.random.default_rng(floor * 100 + i),
                renderer=renderer,
                altitude=floor * FLOOR_HEIGHT,
            )
            sessions.append(walker.perform_sws(plan.route_between("sw", "se")))
            sessions.append(walker.perform_sws(plan.route_between("se", "ne")))
            sessions.append(walker.perform_sws(plan.route_between("nw", "sw")))
    stair_walker = Walker(
        plan, WalkerProfile(user_id="climber"),
        rng=np.random.default_rng(999), renderer=renderer,
    )
    sessions.append(stair_walker.perform_stairs(plan.waypoints["ne"], 1))
    print(f"  {len(sessions)} sessions (incl. 1 stair climb)")

    print("Classifying floors from the barometer channel ...")
    pipeline = MultiFloorPipeline(CrowdMapConfig())
    result = pipeline.run(sessions)

    rows = []
    for floor in result.floor_indices():
        recon = result.floors[floor]
        score = evaluate_hallway_shape(recon.skeleton, plan)
        rows.append(
            [
                floor,
                result.sessions_per_floor.get(floor, 0),
                f"{recon.skeleton.area():.0f} m^2",
                f"{score.f_measure:.1%}",
            ]
        )
    print(
        render_table(
            "Per-floor reconstruction",
            ["floor", "sessions", "skeleton area", "hallway F"],
            rows,
        )
    )
    print()
    for link in result.links:
        print(
            f"Stair link: floor {link.floor_from} -> {link.floor_to} "
            f"({link.kind}) at ({link.position.x:.1f}, {link.position.y:.1f}) "
            f"[true stairwell at ({plan.waypoints['ne'].x:.1f}, "
            f"{plan.waypoints['ne'].y:.1f})]"
        )


if __name__ == "__main__":
    main()
