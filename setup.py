"""Setup shim: metadata lives in pyproject.toml.

Kept so `pip install -e . --no-use-pep517` works on hosts without the
`wheel` package (offline CI), where PEP 517 editable installs fail.
"""
from setuptools import setup

setup()
